package core

import (
	"strings"
	"testing"

	"netdiag/internal/topology"
)

// tp builds a TracePath from hop specs: "name@AS" for identified hops,
// "*name" for unidentified hops.
func tp(src, dst int, ok bool, hops ...string) *TracePath {
	p := &TracePath{SrcSensor: src, DstSensor: dst, OK: ok}
	for _, h := range hops {
		if strings.HasPrefix(h, "*") {
			p.Hops = append(p.Hops, Hop{Node: Node(h), Unidentified: true})
			continue
		}
		name, asStr, found := strings.Cut(h, "@")
		as := 1
		if found {
			as = atoiOrPanic(asStr)
		}
		p.Hops = append(p.Hops, Hop{Node: Node(name), AS: topology.ASN(as)})
	}
	return p
}

func atoiOrPanic(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			panic("bad AS in test spec: " + s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func link(a, b string) Link { return Link{From: Node(a), To: Node(b)} }

func hypLinks(r *Result) map[Link]bool {
	out := map[Link]bool{}
	for _, h := range r.Hypothesis {
		out[h.Link] = true
	}
	return out
}

func physSet(r *Result) map[Link]bool {
	out := map[Link]bool{}
	for _, l := range r.PhysLinks() {
		out[l] = true
	}
	return out
}

func TestTomoFig1Chain(t *testing.T) {
	// The paper's Figure 1: s1->s2 breaks (r9-r11 failed), s1->s3 works.
	// Tomo must return exactly the four links the working path cannot
	// exonerate: r6-r7, r7-r9, r9-r11, r11-s2 (all tied at score 1).
	shared := []string{"s1", "r1", "r3", "r6"}
	toS2 := append(append([]string{}, shared...), "r7", "r9", "r11", "s2")
	toS3 := append(append([]string{}, shared...), "r8", "r10", "s3")
	m := &Measurements{
		NumSensors: 3,
		Before: []*TracePath{
			tp(0, 1, true, toS2...),
			tp(0, 2, true, toS3...),
		},
		After: []*TracePath{
			tp(0, 1, false, "s1", "r1", "r3", "r6", "r7", "r9"),
			tp(0, 2, true, toS3...),
		},
	}
	res, err := Tomo(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []Link{link("r6", "r7"), link("r7", "r9"), link("r9", "r11"), link("r11", "s2")}
	got := hypLinks(res)
	if len(got) != len(want) {
		t.Fatalf("H = %v, want %v", res.Hypothesis, want)
	}
	for _, l := range want {
		if !got[l] {
			t.Fatalf("H missing %v; got %v", l, res.Hypothesis)
		}
	}
	if res.UnexplainedFailures != 0 {
		t.Fatalf("unexplained = %d", res.UnexplainedFailures)
	}
}

func TestTomoMissesReroutedFailureNDEdgeCatchesIt(t *testing.T) {
	// Two simultaneous failures: (A,m) is rerouted around (pair 0-1 now
	// goes via n), (q,C) is non-recoverable (pair 0-2 fails). §2.5/§3.2.
	m := &Measurements{
		NumSensors: 3,
		Before: []*TracePath{
			tp(0, 1, true, "A", "m", "B"),
			tp(0, 2, true, "A", "q", "C"),
		},
		After: []*TracePath{
			tp(0, 1, true, "A", "n", "B"),
			tp(0, 2, false, "A"),
		},
	}
	tomo, err := Tomo(m)
	if err != nil {
		t.Fatal(err)
	}
	if hypLinks(tomo)[link("A", "m")] {
		t.Fatal("Tomo should exonerate A->m (it only knows the pre-failure route of the working pair)")
	}
	edge, err := NDEdge(m)
	if err != nil {
		t.Fatal(err)
	}
	got := hypLinks(edge)
	if !got[link("A", "m")] && !got[link("m", "B")] {
		t.Fatalf("ND-edge should blame the abandoned route, H = %v", edge.Hypothesis)
	}
	if !got[link("A", "q")] && !got[link("q", "C")] {
		t.Fatalf("ND-edge should also cover the failed path, H = %v", edge.Hypothesis)
	}
}

// fig2Meas crafts the paper's Figure 2/3 misconfiguration scenario: y1
// stops exporting C's route to x2, so s1->s3 fails while s1->s2 (same
// physical x2-y1 link) works.
func fig2Meas() *Measurements {
	p12 := []string{"s1@1", "a1@1", "a2@1", "x1@10", "x2@10", "y1@20", "y4@20", "b1@2", "b2@2", "s2@2"}
	p13 := []string{"s1@1", "a1@1", "a2@1", "x1@10", "x2@10", "y1@20", "y2@20", "y3@20", "c1@3", "c2@3", "s3@3"}
	p21 := []string{"s2@2", "b2@2", "b1@2", "y4@20", "y1@20", "x2@10", "x1@10", "a2@1", "a1@1", "s1@1"}
	p31 := []string{"s3@3", "c2@3", "c1@3", "y3@20", "y2@20", "y1@20", "x2@10", "x1@10", "a2@1", "a1@1", "s1@1"}
	p23 := []string{"s2@2", "b2@2", "b1@2", "y4@20", "y3@20", "c1@3", "c2@3", "s3@3"}
	p32 := []string{"s3@3", "c2@3", "c1@3", "y3@20", "y4@20", "b1@2", "b2@2", "s2@2"}
	mk := func(specs [][]string, pairs [][2]int, ok []bool) []*TracePath {
		var out []*TracePath
		for i, s := range specs {
			out = append(out, tp(pairs[i][0], pairs[i][1], ok[i], s...))
		}
		return out
	}
	specs := [][]string{p12, p13, p21, p31, p23, p32}
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 0}, {2, 0}, {1, 2}, {2, 1}}
	before := mk(specs, pairs, []bool{true, true, true, true, true, true})
	// After: s1->s3 fails at x2 (no route); everything else unchanged.
	after := mk(specs, pairs, []bool{true, false, true, true, true, true})
	after[1] = tp(0, 2, false, "s1@1", "a1@1", "a2@1", "x1@10", "x2@10")
	return &Measurements{NumSensors: 3, Before: before, After: after}
}

func TestMisconfigTomoFailsNDEdgeSucceeds(t *testing.T) {
	m := fig2Meas()
	// Ground truth: the "partially failed" physical link is x2->y1.
	f := link("x2", "y1")

	tomo, err := Tomo(m)
	if err != nil {
		t.Fatal(err)
	}
	if hypLinks(tomo)[f] {
		t.Fatal("Tomo cannot see a partial failure of a link on a working path (§2.5 item 1)")
	}

	edge, err := NDEdge(m)
	if err != nil {
		t.Fatal(err)
	}
	if !physSet(edge)[f] {
		t.Fatalf("ND-edge must localize the misconfigured physical link %v; phys = %v, H = %v",
			f, edge.PhysLinks(), edge.Hypothesis)
	}
	// The logical links in H must be the (C)-tagged ones through y1.
	foundLogical := false
	for _, h := range edge.Hypothesis {
		if IsLogical(h.Link.From) || IsLogical(h.Link.To) {
			foundLogical = true
			if d := Display(h.Link.From) + "->" + Display(h.Link.To); !strings.Contains(d, "y1(3)") {
				t.Fatalf("unexpected logical hypothesis link %s", d)
			}
		}
	}
	if !foundLogical {
		t.Fatalf("expected logical links in H, got %v", edge.Hypothesis)
	}
	// Specificity should be much better than blaming the whole suffix:
	// the (B)-tagged logicals and the y-internal links carry working
	// paths, so H stays small.
	if len(edge.Hypothesis) > 4 {
		t.Fatalf("H too large for a single misconfiguration: %v", edge.Hypothesis)
	}
}

func TestWithdrawalTrimming(t *testing.T) {
	// §3.3 example: s2->s1 and s3->s1 fail; x1 receives a withdrawal from
	// a2 for s1's prefix. Links upstream of (and including) x1->a2 must
	// leave the hypothesis.
	m := fig2Meas()
	// Rewrite the failure: a1-s1 link dies; both reverse paths to s1 fail.
	for i := range m.After {
		p := m.After[i]
		if p.DstSensor == 0 {
			m.After[i] = &TracePath{
				SrcSensor: p.SrcSensor, DstSensor: 0, OK: false,
				Hops: p.Hops[:len(p.Hops)-1], // stops before s1
			}
		} else {
			// restore the misconfig change from fig2Meas: all other
			// paths work unchanged.
			cp := *m.Before[i]
			m.After[i] = &cp
		}
	}
	ri := &RoutingInfo{
		ASX: 10,
		Withdrawals: []Withdrawal{
			{At: "x1", From: "a2", DstSensors: []int{0}},
		},
	}
	res, err := NDBgpIgp(m, ri)
	if err != nil {
		t.Fatal(err)
	}
	phys := physSet(res)
	for _, banned := range []Link{link("y1", "x2"), link("x2", "x1"), link("y4", "y1")} {
		if phys[banned] {
			t.Fatalf("withdrawal should exonerate %v; phys = %v", banned, res.PhysLinks())
		}
	}
	// The withdrawal edge x1->a2 itself may remain ONLY as the logical
	// hypothesis "a2 stopped announcing s1's prefix to x1" — never as a
	// plain physical-failure suspect (the withdrawal arrived over it, so
	// the session is up).
	for _, h := range res.Hypothesis {
		if h.Link == link("x1", "a2") {
			t.Fatalf("physical x1->a2 must be exonerated; H = %v", res.Hypothesis)
		}
	}
	if !phys[link("a2", "a1")] && !phys[link("a1", "s1")] {
		t.Fatalf("H must retain the downstream suffix; phys = %v", res.PhysLinks())
	}

	// Without the withdrawal, the upstream links stay in H (bigger set).
	plain, err := NDEdge(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.PhysLinks()) <= len(res.PhysLinks()) {
		t.Fatalf("withdrawals should shrink the hypothesis: %d vs %d",
			len(plain.PhysLinks()), len(res.PhysLinks()))
	}
}

func TestIGPDownGoesStraightToHypothesis(t *testing.T) {
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "s1@1", "x1@10", "x2@10", "s2@2")},
		After:      []*TracePath{tp(0, 1, false, "s1@1")},
	}
	ri := &RoutingInfo{ASX: 10, IGPDownLinks: []Link{link("x1", "x2"), link("x2", "x1")}}
	res, err := NDBgpIgp(m, ri)
	if err != nil {
		t.Fatal(err)
	}
	got := hypLinks(res)
	if !got[link("x1", "x2")] {
		t.Fatalf("IGP-down link missing from H: %v", res.Hypothesis)
	}
	// The failure set is explained by the IGP link; greedy must not add
	// the other links of the failed path.
	if got[link("s1", "x1")] || got[link("x2", "s2")] {
		t.Fatalf("IGP evidence should make H exact: %v", res.Hypothesis)
	}
	// The reverse direction never appears on any path: it must be skipped.
	if got[link("x2", "x1")] {
		t.Fatalf("unprobed direction should not enter H: %v", res.Hypothesis)
	}
}

// tableLG is a scripted LookingGlass for tests.
type tableLG struct {
	avail map[topology.ASN]bool
	paths map[topology.ASN]map[int][]topology.ASN
}

func (t *tableLG) Available(as topology.ASN) bool { return t.avail[as] }
func (t *tableLG) ASPath(from topology.ASN, dst int) ([]topology.ASN, bool) {
	p, ok := t.paths[from][dst]
	return p, ok
}

func TestNDLGMapsUHsAndClusters(t *testing.T) {
	// Two failed paths cross blocked AS 20 between AS 10 and AS 30; the
	// hidden failed link is inside AS 20. ND-LG must blame AS 20.
	m := &Measurements{
		NumSensors: 4,
		Before: []*TracePath{
			tp(0, 1, true, "s1@10", "x@10", "*u1", "*u2", "z@30", "s2@30"),
			tp(2, 3, true, "s3@10", "x@10", "*u3", "*u4", "z@30", "s4@30"),
		},
		After: []*TracePath{
			tp(0, 1, false, "s1@10", "x@10"),
			tp(2, 3, false, "s3@10", "x@10"),
		},
	}
	lg := &tableLG{
		avail: map[topology.ASN]bool{10: true},
		paths: map[topology.ASN]map[int][]topology.ASN{
			10: {
				1: {10, 20, 30},
				3: {10, 20, 30},
			},
		},
	}
	res, err := NDLG(m, &RoutingInfo{ASX: 10}, lg)
	if err != nil {
		t.Fatal(err)
	}
	ases := res.ASes()
	found := false
	for _, a := range ases {
		if a == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ND-LG should attribute the failure to AS 20; ASes = %v, H = %v", ases, res.Hypothesis)
	}
	// Clustering should let one pick (plus its cluster) explain both
	// failures: expect few greedy iterations and a compact H.
	if res.UnexplainedFailures != 0 {
		t.Fatalf("unexplained failures: %d", res.UnexplainedFailures)
	}
}

func TestNDLGAmbiguousTag(t *testing.T) {
	// The AS path crosses two blocked ASes (20, 25) back to back: UHs get
	// the combined tag {20,25}, exactly the paper's {B,D} case.
	m := &Measurements{
		NumSensors: 2,
		Before: []*TracePath{
			tp(0, 1, true, "s1@10", "x@10", "*u1", "*u2", "z@30", "s2@30"),
		},
		After: []*TracePath{
			tp(0, 1, false, "s1@10", "x@10"),
		},
	}
	lg := &tableLG{
		avail: map[topology.ASN]bool{10: true},
		paths: map[topology.ASN]map[int][]topology.ASN{
			10: {1: {10, 20, 25, 30}},
		},
	}
	res, err := NDLG(m, &RoutingInfo{ASX: 10}, lg)
	if err != nil {
		t.Fatal(err)
	}
	ases := res.ASes()
	has20, has25 := false, false
	for _, a := range ases {
		if a == 20 {
			has20 = true
		}
		if a == 25 {
			has25 = true
		}
	}
	if !has20 || !has25 {
		t.Fatalf("ambiguous run should carry both candidate ASes, got %v", ases)
	}
}

func TestSCFSFig1(t *testing.T) {
	shared := []string{"s1", "r1", "r3", "r6"}
	toS2 := append(append([]string{}, shared...), "r7", "r9", "r11", "s2")
	toS3 := append(append([]string{}, shared...), "r8", "r10", "s3")
	// s2 bad, s3 good: SCFS marks only the link nearest the source on the
	// bad branch: r6->r7.
	got, err := SCFS([]*TracePath{tp(0, 1, false, toS2...), tp(0, 2, true, toS3...)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != link("r6", "r7") {
		t.Fatalf("SCFS = %v, want [r6->r7]", got)
	}
	// Both bad: blame the single link below the source.
	got, err = SCFS([]*TracePath{tp(0, 1, false, toS2...), tp(0, 2, false, toS3...)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != link("s1", "r1") {
		t.Fatalf("SCFS = %v, want [s1->r1]", got)
	}
	// All good: empty.
	got, err = SCFS([]*TracePath{tp(0, 1, true, toS2...), tp(0, 2, true, toS3...)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("SCFS on healthy tree = %v, want empty", got)
	}
}

func TestSCFSErrors(t *testing.T) {
	if _, err := SCFS([]*TracePath{
		tp(0, 1, true, "a", "b"),
		tp(1, 2, true, "a", "c"),
	}); err == nil {
		t.Fatal("SCFS must reject multiple sources")
	}
	if _, err := SCFS([]*TracePath{
		tp(0, 1, true, "a", "b", "d"),
		tp(0, 2, true, "a", "c", "d", "e"),
	}); err == nil {
		t.Fatal("SCFS must reject non-tree path sets")
	}
}

func TestDiagnosability(t *testing.T) {
	// Chain: both links carried by exactly the same single path ->
	// 1 distinct hitting set over 2 links: D = 0.5.
	paths := []*TracePath{tp(0, 1, true, "a", "b", "c")}
	if d := Diagnosability(paths); d != 0.5 {
		t.Fatalf("D = %v, want 0.5", d)
	}
	// Add a path covering only a->b: hitting sets become distinct: D = 1.
	paths = append(paths, tp(0, 2, true, "a", "b"))
	if d := Diagnosability(paths); d != 1.0 {
		t.Fatalf("D = %v, want 1.0", d)
	}
	if d := Diagnosability(nil); d != 0 {
		t.Fatalf("D(empty) = %v, want 0", d)
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	m := &Measurements{NumSensors: 2, After: []*TracePath{tp(0, 5, true, "a", "b")}}
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range sensor must fail validation")
	}
	m = &Measurements{
		NumSensors: 2,
		After:      []*TracePath{tp(0, 1, true, "a", "b")},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("after-path without before measurement must fail validation")
	}
	m = &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{{SrcSensor: 0, DstSensor: 1, OK: true}},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("empty hop list must fail validation")
	}
}

func TestDisplayAndIsLogical(t *testing.T) {
	n := logicalNodeName("x2", "y1", "3")
	if !IsLogical(n) {
		t.Fatalf("%q should be logical", n)
	}
	if got := Display(n); got != "y1(3)" {
		t.Fatalf("Display = %q, want y1(3)", got)
	}
	if IsLogical("y1") || Display("y1") != "y1" {
		t.Fatal("plain nodes must pass through Display unchanged")
	}
}

func TestPathsEquivalentAndLinksNotIn(t *testing.T) {
	a := tp(0, 1, true, "a", "*u1", "b")
	b := tp(0, 1, true, "a", "*u2", "b")
	if !pathsEquivalent(a, b) {
		t.Fatal("aligned UHs should make paths equivalent")
	}
	c := tp(0, 1, true, "a", "c", "b")
	if pathsEquivalent(a, c) {
		t.Fatal("UH vs identified hop must differ")
	}
	diff := linksNotIn(c.Links(), tp(0, 1, true, "a", "c", "d").Links())
	if len(diff) != 1 || diff[0] != link("c", "b") {
		t.Fatalf("linksNotIn = %v", diff)
	}
}

func TestUnexplainableFailureReported(t *testing.T) {
	// The failed path's every link also lies on a working path:
	// inconsistent observations leave the failure unexplained.
	m := &Measurements{
		NumSensors: 3,
		Before: []*TracePath{
			tp(0, 1, true, "a", "b"),
			tp(0, 2, true, "a", "b"),
		},
		After: []*TracePath{
			tp(0, 1, false, "a"),
			tp(0, 2, true, "a", "b"),
		},
	}
	res, err := Tomo(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnexplainedFailures != 1 {
		t.Fatalf("unexplained = %d, want 1", res.UnexplainedFailures)
	}
	if len(res.Hypothesis) != 0 {
		t.Fatalf("H should be empty, got %v", res.Hypothesis)
	}
}

func TestPartialTracesExtension(t *testing.T) {
	// The failed traceroute still reached m: with the extension the a->m
	// links are exonerated, shrinking H to the suffix.
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "a", "m", "q", "b")},
		After:      []*TracePath{tp(0, 1, false, "a", "m")},
	}
	plain, err := Run(m, Options{UseReroutes: true})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Run(m, Options{UseReroutes: true, UsePartialTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Hypothesis) >= len(plain.Hypothesis) {
		t.Fatalf("partial traces should shrink H: %d vs %d", len(ext.Hypothesis), len(plain.Hypothesis))
	}
	if hypLinks(ext)[link("a", "m")] {
		t.Fatal("responding prefix link must be exonerated")
	}
}

func TestScoreWeights(t *testing.T) {
	// With RerouteWeight 0 and only reroute sets, greedy adds nothing.
	m := &Measurements{
		NumSensors: 3,
		Before: []*TracePath{
			tp(0, 1, true, "A", "m", "B"),
			tp(0, 2, true, "A", "q", "C"),
		},
		After: []*TracePath{
			tp(0, 1, true, "A", "n", "B"),
			tp(0, 2, false, "A"),
		},
	}
	res, err := Run(m, Options{UseReroutes: true, RerouteWeight: -1}) // negative disables reroute score
	if err != nil {
		t.Fatal(err)
	}
	// The failed path is still explained; only the reroute-driven links
	// may be missing. Verify H covers the failed path.
	got := hypLinks(res)
	if !got[link("A", "q")] && !got[link("q", "C")] {
		t.Fatalf("failed path must still be explained, H = %v", res.Hypothesis)
	}
}
