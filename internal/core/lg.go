package core

import (
	"sort"

	"netdiag/internal/topology"
)

// This file implements the Looking-Glass machinery of ND-LG (§3.4):
// mapping unidentified hops (UHs) to candidate ASes using AS-path queries,
// and clustering unidentified links that could be the same physical link.

// LookingGlass answers AS-path queries the way a Looking Glass server
// does: the AS-level path from an AS to the prefix covering a sensor.
// Available reports whether the AS operates a reachable Looking Glass;
// implementations should make the troubleshooter's own AS always available
// (it can consult its own BGP tables, which the paper uses for mapping
// downstream UHs).
type LookingGlass interface {
	Available(as topology.ASN) bool
	ASPath(from topology.ASN, dstSensor int) ([]topology.ASN, bool)
}

// asTag is a sorted set of candidate ASes for a UH.
type asTag []topology.ASN

func (t asTag) equal(o asTag) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// mapUHs assigns AS tags to every unidentified hop of the measurements by
// querying Looking Glasses. For each maximal UH run bounded by identified
// hops in ASes A (before) and C (after), it queries, in path order, the
// Looking Glasses of the identified ASes on the path; the first available
// one whose AS path contains A followed by C determines the tag: the ASes
// strictly between them. Runs that cannot be aligned stay untagged.
func mapUHs(m *Measurements, lg LookingGlass) map[Node]asTag {
	tags := map[Node]asTag{}
	for _, p := range m.Before {
		mapUHsOnPath(p, lg, tags)
	}
	for _, p := range m.After {
		mapUHsOnPath(p, lg, tags)
	}
	return tags
}

func mapUHsOnPath(p *TracePath, lg LookingGlass, tags map[Node]asTag) {
	hops := p.Hops
	// Identified ASes along the path, in order, deduplicated.
	var pathASes []topology.ASN
	for _, h := range hops {
		if h.Unidentified {
			continue
		}
		if len(pathASes) == 0 || pathASes[len(pathASes)-1] != h.AS {
			pathASes = append(pathASes, h.AS)
		}
	}
	for i := 0; i < len(hops); {
		if !hops[i].Unidentified {
			i++
			continue
		}
		j := i
		for j+1 < len(hops) && hops[j+1].Unidentified {
			j++
		}
		// Run [i..j]. Bounding identified hops:
		if i > 0 && j+1 < len(hops) && !hops[j+1].Unidentified {
			a, c := hops[i-1].AS, hops[j+1].AS
			if tag, ok := alignRun(a, c, pathASes, lg, p.DstSensor); ok {
				for k := i; k <= j; k++ {
					tags[hops[k].Node] = tag
				}
			}
		}
		i = j + 1
	}
}

// alignRun finds the AS tag for a UH run bounded by ASes a and c.
func alignRun(a, c topology.ASN, pathASes []topology.ASN, lg LookingGlass, dst int) (asTag, bool) {
	for _, q := range pathASes {
		if !lg.Available(q) {
			continue
		}
		asPath, ok := lg.ASPath(q, dst)
		if !ok {
			continue
		}
		ai := indexOfAS(asPath, a, 0)
		if ai < 0 {
			continue
		}
		ci := indexOfAS(asPath, c, ai+1)
		if ci < 0 {
			continue
		}
		if ci == ai+1 {
			// The AS path shows a and c adjacent but the traceroute has
			// hidden hops between them; with whole-AS blocking this means
			// the LG view disagrees — try another LG.
			continue
		}
		tag := append(asTag{}, asPath[ai+1:ci]...)
		sort.Slice(tag, func(x, y int) bool { return tag[x] < tag[y] })
		return tag, true
	}
	return nil, false
}

func indexOfAS(path []topology.ASN, a topology.ASN, from int) int {
	for i := from; i < len(path); i++ {
		if path[i] == a {
			return i
		}
	}
	return -1
}

// endpointKey captures the paper's rule for when two link endpoints can be
// "the same hop": identified endpoints must be the same router; UH
// endpoints must carry identical non-empty AS tags.
type endpointKey struct {
	identified Node
	tag        string
	ok         bool
}

func makeEndpointKey(n Node, uh bool, tags map[Node]asTag) endpointKey {
	if !uh {
		return endpointKey{identified: n, ok: true}
	}
	t := tags[n]
	if len(t) == 0 {
		return endpointKey{ok: false}
	}
	buf := make([]byte, 0, 8*len(t))
	for _, a := range t {
		buf = append(buf, ',')
		buf = append(buf, itoaASN(a)...)
	}
	return endpointKey{tag: string(buf), ok: true}
}

func itoaASN(a topology.ASN) string {
	// Small manual conversion to avoid fmt in a hot loop.
	if a == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	n := int(a)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
