package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestBitsetWordBoundaries exercises set/clear/has/popcount exactly at the
// 64-bit word edges — universes of 63, 64 and 65 bits, and indices 62..65 —
// where a shift or word-count bug would hide.
func TestBitsetWordBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		b := newBitset(n)
		wantWords := (n + 63) / 64
		if len(b) != wantWords {
			t.Fatalf("newBitset(%d): %d words, want %d", n, len(b), wantWords)
		}
		for i := 0; i < n; i++ {
			b.set(int32(i))
		}
		if got := b.popcount(); got != n {
			t.Fatalf("popcount after filling %d bits: %d", n, got)
		}
		for i := 0; i < n; i++ {
			if !b.has(int32(i)) {
				t.Fatalf("n=%d: bit %d missing", n, i)
			}
		}
		// Bits beyond the allocated words read as absent and clear as no-ops.
		if b.has(int32(wantWords * 64)) {
			t.Fatalf("n=%d: phantom bit beyond words", n)
		}
		b.clear(int32(wantWords*64 + 7))
		for _, i := range []int{0, n/2 - 1, n - 1} {
			b.clear(int32(i))
			if b.has(int32(i)) {
				t.Fatalf("n=%d: bit %d survived clear", n, i)
			}
		}
		if got := b.popcount(); got != n-3 {
			t.Fatalf("popcount after 3 clears: %d, want %d", got, n-3)
		}
	}
}

// TestBitsetSetGrow checks the growth write path and that reads stay
// tolerant of the capacity differences growth creates.
func TestBitsetSetGrow(t *testing.T) {
	var b bitset
	for _, i := range []int32{0, 63, 64, 65, 200, 1023} {
		setGrow(&b, i)
		if !b.has(i) {
			t.Fatalf("bit %d missing after setGrow", i)
		}
	}
	if got := b.popcount(); got != 6 {
		t.Fatalf("popcount %d, want 6", got)
	}
	// Mismatched lengths must still compare the shared words.
	short := newBitset(64)
	short.set(3)
	if andAny(short, b) {
		t.Fatalf("andAny found a bit neither side shares")
	}
	short.set(63)
	if !andAny(short, b) {
		t.Fatalf("andAny missed the shared bit 63")
	}
}

// TestBitsetAgainstMapModel drives the primitives against a map[int]bool
// reference model with random operations, covering and/or/popcount over
// random densities and mismatched word counts.
func TestBitsetAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 50; trial++ {
		na := 1 + rng.Intn(200)
		nb := 1 + rng.Intn(200)
		a, b := newBitset(na), newBitset(nb)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < na; i++ {
			if rng.Intn(3) == 0 {
				a.set(int32(i))
				ma[i] = true
			}
		}
		for i := 0; i < nb; i++ {
			if rng.Intn(3) == 0 {
				b.set(int32(i))
				mb[i] = true
			}
		}
		wantBoth, wantAny := 0, false
		for i := range ma {
			if mb[i] {
				wantBoth++
				wantAny = true
			}
		}
		if got := andPopcount(a, b); got != wantBoth {
			t.Fatalf("trial %d: andPopcount=%d want %d", trial, got, wantBoth)
		}
		if got := andAny(a, b); got != wantAny {
			t.Fatalf("trial %d: andAny=%v want %v", trial, got, wantAny)
		}
		if got := a.popcount(); got != len(ma) {
			t.Fatalf("trial %d: popcount=%d want %d", trial, got, len(ma))
		}
		if na >= nb {
			orInto(a, b)
			for i := range mb {
				ma[i] = true
			}
			if got := a.popcount(); got != len(ma) {
				t.Fatalf("trial %d: popcount after orInto=%d want %d", trial, got, len(ma))
			}
		}
	}
}

// TestFullMask checks the unexplained-mask constructor at word edges.
func TestFullMask(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		m, cnt := fullMask(n)
		if cnt != n || m.popcount() != n {
			t.Fatalf("fullMask(%d): cnt=%d popcount=%d", n, cnt, m.popcount())
		}
		if n > 0 && !m.has(int32(n-1)) {
			t.Fatalf("fullMask(%d): top bit missing", n)
		}
		if m.has(int32(n)) {
			t.Fatalf("fullMask(%d): bit %d should be clear", n, n)
		}
	}
}

// TestTransposeCover checks the candidate→set inversion feeding the
// incremental score updates.
func TestTransposeCover(t *testing.T) {
	cover := []bitset{newBitset(130), nil, newBitset(130)}
	cover[0].set(0)
	cover[0].set(64)
	cover[2].set(64)
	cover[2].set(129)
	got := transposeCover(cover, 130)
	check := func(set int, want ...int32) {
		t.Helper()
		if len(got[set]) != len(want) {
			t.Fatalf("set %d: %v, want %v", set, got[set], want)
		}
		for i := range want {
			if got[set][i] != want[i] {
				t.Fatalf("set %d: %v, want %v", set, got[set], want)
			}
		}
	}
	check(0, 0)
	check(64, 0, 2)
	check(129, 2)
	check(1)
}

// TestLinkInterner checks dense ID assignment and lookup-miss semantics.
func TestLinkInterner(t *testing.T) {
	in := newLinkInterner()
	a := Link{From: "a", To: "b"}
	b := Link{From: "b", To: "c"}
	if id := in.id(a); id != 0 {
		t.Fatalf("first id = %d", id)
	}
	if id := in.id(b); id != 1 {
		t.Fatalf("second id = %d", id)
	}
	if id := in.id(a); id != 0 {
		t.Fatalf("re-intern changed id: %d", id)
	}
	if _, ok := in.lookup(Link{From: "x", To: "y"}); ok {
		t.Fatal("lookup invented an id")
	}
	if in.size() != 2 || in.links[0] != a || in.links[1] != b {
		t.Fatalf("table %v size %d", in.links, in.size())
	}
}

// TestEngineEquivalenceSynthetic is the in-package quick differential: the
// bitset and map engines must render byte-identical wire output on the
// synthetic benchmark meshes across variants and parallelism. The
// cross-variant harness over the paper topologies lives in
// internal/experiment.
func TestEngineEquivalenceSynthetic(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 40} {
		m := synthMeasurements(8, 6, seed)
		for _, opts := range []Options{
			{},
			{LogicalLinks: true, UseReroutes: true},
			{LogicalLinks: true, UseReroutes: true, UsePartialTraces: true},
			{LogicalLinks: true, UseReroutes: true, PerPrefixLogical: true},
		} {
			for _, par := range []int{1, 8} {
				opts.Parallelism = par
				optsMap := opts
				optsMap.Engine = EngineMap
				got, err := Run(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(m, optsMap)
				if err != nil {
					t.Fatal(err)
				}
				var gb, wb bytes.Buffer
				if err := got.Wire("x").Encode(&gb); err != nil {
					t.Fatal(err)
				}
				if err := want.Wire("x").Encode(&wb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
					t.Fatalf("seed %d opts %+v: engines disagree\nbitset: %s\nmap: %s",
						seed, opts, gb.String(), wb.String())
				}
			}
		}
	}
}

// BenchmarkGreedyScoreKernel exercises the bitset scoring kernels the way
// the greedy loop composes them — initial popcount scores, best scan,
// delta retire — over preallocated buffers. Guarded by benchjson
// -allocguard: the kernels must not allocate per round.
func BenchmarkGreedyScoreKernel(b *testing.B) {
	const nCand, nSets = 256, 512
	rng := rand.New(rand.NewSource(11))
	cover := make([]bitset, nCand)
	for i := range cover {
		cover[i] = newBitset(nSets)
		for k := 0; k < 24; k++ {
			cover[i].set(int32(rng.Intn(nSets)))
		}
	}
	full, _ := fullMask(nSets)
	coveredBy := transposeCover(cover, nSets)
	fCnt := make([]int, nCand)
	rCnt := make([]int, nCand)
	alive := make([]bool, nCand)
	order := make([]int32, nCand)
	bestBuf := make([]int32, nCand)
	scratch := newBitset(nSets)
	unexpl := newBitset(nSets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(unexpl, full)
		for pos := range cover {
			order[pos] = int32(pos)
			alive[pos] = true
			fCnt[pos] = andPopcount(cover[pos], unexpl)
			rCnt[pos] = 0
		}
		for round := 0; round < 4; round++ {
			best, k := scanBest(order, alive, fCnt, rCnt, 1, 1, bestBuf)
			if best == 0 {
				break // ties retired every set early — nothing left to score
			}
			for s := 0; s < k; s++ {
				pos := bestBuf[s]
				alive[pos] = false
				accumDelta(cover[pos], unexpl, scratch)
			}
			retireSets(scratch, unexpl, coveredBy, fCnt)
		}
	}
}
