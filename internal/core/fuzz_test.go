package core

import (
	"fmt"
	"reflect"
	"testing"

	"netdiag/internal/topology"
)

// The fuzz targets drive the hitting-set entry points with arbitrary
// byte strings decoded into small measurement meshes. Two properties
// are enforced: no input may panic (malformed meshes must surface as
// *ValidationError), and diagnosis is a pure function of its input —
// decoding and diagnosing the same bytes twice yields identical
// results, hypothesis order included.

// fuzzReader doles out bytes, yielding zero once the input is spent, so
// every byte string decodes to some (possibly invalid) measurement set.
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	v := r.data[r.i]
	r.i++
	return v
}

// decodeMeasurements maps a byte string onto a measurement mesh. The
// node pool is deliberately tiny so before/after paths collide and the
// set-cover machinery gets real work; sensor indices stray one past the
// valid range now and then so validation failures are exercised too.
func decodeMeasurements(data []byte) *Measurements {
	r := &fuzzReader{data: data}
	ns := 2 + int(r.next()%4)
	m := &Measurements{NumSensors: ns}
	for mesh := 0; mesh < 2; mesh++ {
		n := int(r.next() % 6)
		for i := 0; i < n; i++ {
			p := &TracePath{
				SrcSensor: int(r.next()) % (ns + 1),
				DstSensor: int(r.next()) % (ns + 1),
				OK:        r.next()%2 == 0,
			}
			nh := int(r.next() % 5)
			for j := 0; j < nh; j++ {
				p.Hops = append(p.Hops, Hop{
					Node:         Node(fmt.Sprintf("h%d", r.next()%12)),
					AS:           topology.ASN(1 + r.next()%3),
					Unidentified: r.next()%5 == 0,
				})
			}
			if mesh == 0 {
				m.Before = append(m.Before, p)
			} else {
				m.After = append(m.After, p)
			}
		}
	}
	return m
}

func checkDiagnosis(t *testing.T, name string, run func() (*Result, error)) {
	t.Helper()
	r1, err1 := run()
	r2, err2 := run()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: nondeterministic error: %v vs %v", name, err1, err2)
	}
	if err1 != nil {
		if err1.Error() != err2.Error() {
			t.Fatalf("%s: nondeterministic error text: %q vs %q", name, err1, err2)
		}
		return
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("%s: nondeterministic result:\n%+v\nvs\n%+v", name, r1, r2)
	}
	for i := 1; i < len(r1.Hypothesis); i++ {
		a, b := r1.Hypothesis[i-1].Link, r1.Hypothesis[i].Link
		if a.From > b.From || (a.From == b.From && a.To > b.To) {
			t.Fatalf("%s: hypothesis not sorted by link: %v before %v", name, a, b)
		}
	}
}

func FuzzDiagnose(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0, 1, 1, 0, 2, 1, 2, 3, 1, 0, 2, 1, 1, 0, 1, 4, 5, 1, 3})
	f.Add([]byte("0123456789abcdef0123456789abcdef0123456789abcdef"))
	f.Add([]byte{3, 4, 0, 1, 0, 3, 10, 1, 0, 11, 2, 1, 12, 3, 0, 1, 0, 1, 3, 10, 1, 0, 13, 2, 1, 12, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		checkDiagnosis(t, "Tomo", func() (*Result, error) {
			return Tomo(decodeMeasurements(data))
		})
		checkDiagnosis(t, "NDEdge", func() (*Result, error) {
			return NDEdge(decodeMeasurements(data))
		})
	})
}
