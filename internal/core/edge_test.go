package core

import (
	"testing"

	"netdiag/internal/topology"
)

// Edge-case tests complementing core_test.go.

func TestPerPrefixLogicalLocalizesSinglePrefixMisconfig(t *testing.T) {
	// Two destinations (sensors 1 and 2) sit behind the same out-neighbor
	// AS 30 of router b (AS 20). b filters only sensor 2's prefix towards
	// a: at per-neighbor granularity the (30)-tagged logical link still
	// carries sensor 1's working path, so the misconfiguration is
	// invisible; per-prefix granularity localizes it.
	p01 := []string{"s0@10", "a@10", "b@20", "c@30", "s1@30"}
	p02 := []string{"s0@10", "a@10", "b@20", "c@30", "d@31", "s2@31"}
	m := &Measurements{
		NumSensors: 3,
		Before: []*TracePath{
			tp(0, 1, true, p01...),
			tp(0, 2, true, p02...),
		},
		After: []*TracePath{
			tp(0, 1, true, p01...),
			tp(0, 2, false, "s0@10", "a@10"),
		},
	}
	f := link("a", "b")

	neigh, err := Run(m, Options{LogicalLinks: true, UseReroutes: true})
	if err != nil {
		t.Fatal(err)
	}
	if physSet(neigh)[f] {
		t.Fatalf("per-neighbor granularity should NOT localize a single-prefix filter here; phys=%v",
			neigh.PhysLinks())
	}
	pref, err := Run(m, Options{LogicalLinks: true, UseReroutes: true, PerPrefixLogical: true})
	if err != nil {
		t.Fatal(err)
	}
	if !physSet(pref)[f] {
		t.Fatalf("per-prefix granularity must localize the filtered link; phys=%v H=%v",
			pref.PhysLinks(), pref.Hypothesis)
	}
}

func TestExpandedSizeGrowsWithGranularity(t *testing.T) {
	p01 := []string{"s0@10", "a@10", "b@20", "s1@20"}
	p02 := []string{"s0@10", "a@10", "b@20", "c@30", "s2@30"}
	m := &Measurements{
		NumSensors: 3,
		Before:     []*TracePath{tp(0, 1, true, p01...), tp(0, 2, true, p02...)},
		After:      []*TracePath{tp(0, 1, true, p01...), tp(0, 2, true, p02...)},
	}
	_, neigh := ExpandedSize(m, false)
	_, pref := ExpandedSize(m, true)
	if pref < neigh {
		t.Fatalf("per-prefix graph (%d links) should not be smaller than per-neighbor (%d)", pref, neigh)
	}
	raw := 0
	seen := linkSet{}
	for _, p := range m.Before {
		for _, l := range p.Links() {
			if !seen.has(l) {
				seen.add(l)
				raw++
			}
		}
	}
	if neigh <= raw {
		t.Fatalf("expansion should add links: %d expanded vs %d raw", neigh, raw)
	}
}

func TestExpansionSkipsUnidentifiedEndpoints(t *testing.T) {
	// The a->* hop pair crosses ASes but the far endpoint is a UH:
	// expansion must keep the link physical (no logical node inserted).
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "s0@10", "a@10", "*u1", "b@30", "s1@30")},
		After:      []*TracePath{tp(0, 1, false, "s0@10")},
	}
	res, err := Run(m, Options{LogicalLinks: true, UseReroutes: true, KeepUnidentified: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hypothesis {
		if IsLogical(h.Link.From) || IsLogical(h.Link.To) {
			t.Fatalf("no logical links should exist around UHs: %v", h.Link)
		}
	}
	if res.UnexplainedFailures != 0 {
		t.Fatal("the failure must still be explained")
	}
}

func TestWithdrawalIgnoredWhenEdgeNotOnPath(t *testing.T) {
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "a", "b", "c")},
		After:      []*TracePath{tp(0, 1, false, "a")},
	}
	// Withdrawal names nodes not on the path: no trimming, H must still
	// explain the failure with the path's links.
	ri := &RoutingInfo{ASX: 1, Withdrawals: []Withdrawal{{At: "x", From: "y", DstSensors: []int{1}}}}
	res, err := NDBgpIgp(m, ri)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypothesis) == 0 || res.UnexplainedFailures != 0 {
		t.Fatalf("failure unexplained: H=%v unexplained=%d", res.Hypothesis, res.UnexplainedFailures)
	}
	// Withdrawal in the wrong order (From precedes At) must not trim.
	m2 := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "a", "b", "c")},
		After:      []*TracePath{tp(0, 1, false, "a")},
	}
	ri2 := &RoutingInfo{ASX: 1, Withdrawals: []Withdrawal{{At: "c", From: "a", DstSensors: []int{1}}}}
	res2, err := NDBgpIgp(m2, ri2)
	if err != nil {
		t.Fatal(err)
	}
	got := hypLinks(res2)
	if !got[link("a", "b")] && !got[link("b", "c")] {
		t.Fatalf("reverse-order withdrawal must not exonerate the path: %v", res2.Hypothesis)
	}
}

func TestWithdrawalTrimmingEntirePathUnexplained(t *testing.T) {
	// The withdrawal edge is the last link of the path: everything is
	// exonerated and the failure becomes unexplainable — the troubleshooter
	// reports it instead of inventing links.
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "a", "b", "c")},
		After:      []*TracePath{tp(0, 1, false, "a")},
	}
	ri := &RoutingInfo{ASX: 1, Withdrawals: []Withdrawal{{At: "b", From: "c", DstSensors: []int{1}}}}
	res, err := NDBgpIgp(m, ri)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnexplainedFailures != 1 {
		t.Fatalf("fully trimmed failure set should be reported unexplained, got %d (H=%v)",
			res.UnexplainedFailures, res.Hypothesis)
	}
}

func TestClusteringRequiresMatchingTags(t *testing.T) {
	// Two failed paths cross different blocked ASes (20 and 25). Their UH
	// links must NOT cluster, and both ASes end up in the hypothesis.
	m := &Measurements{
		NumSensors: 4,
		Before: []*TracePath{
			tp(0, 1, true, "s0@10", "x@10", "*u1", "z@30", "s1@30"),
			tp(2, 3, true, "s2@11", "y@11", "*u2", "w@31", "s3@31"),
		},
		After: []*TracePath{
			tp(0, 1, false, "s0@10", "x@10"),
			tp(2, 3, false, "s2@11", "y@11"),
		},
	}
	lg := &tableLG{
		avail: map[topology.ASN]bool{10: true, 11: true},
		paths: map[topology.ASN]map[int][]topology.ASN{
			10: {1: {10, 20, 30}},
			11: {3: {11, 25, 31}},
		},
	}
	res, err := NDLG(m, &RoutingInfo{ASX: 10}, lg)
	if err != nil {
		t.Fatal(err)
	}
	ases := map[topology.ASN]bool{}
	for _, a := range res.ASes() {
		ases[a] = true
	}
	if !ases[20] || !ases[25] {
		t.Fatalf("both blocked ASes must be suspected, got %v", res.ASes())
	}
	// The UH links must not have clustered: explaining both failures
	// requires at least two distinct hypothesis links (ties may land in
	// one greedy iteration, but never in one link).
	if len(res.Hypothesis) < 2 {
		t.Fatalf("incompatible UH links should not cluster; H=%v", res.Hypothesis)
	}
}

func TestWithdrawalKeepsMisconfigLogicalLink(t *testing.T) {
	// The withdrawal edge IS the misconfigured link: x2 heard a
	// withdrawal from y1 for sensor 2's prefix because y1's export filter
	// dropped it. The logical link y1(tag)->y1 must survive the trimming
	// and carry the physical attribution x2->y1.
	m := fig2Meas()
	ri := &RoutingInfo{
		ASX:         10,
		Withdrawals: []Withdrawal{{At: "x2", From: "y1", DstSensors: []int{2}}},
	}
	res, err := NDBgpIgp(m, ri)
	if err != nil {
		t.Fatal(err)
	}
	if !physSet(res)[link("x2", "y1")] {
		t.Fatalf("misconfigured physical link must stay suspect; phys=%v H=%v",
			res.PhysLinks(), res.Hypothesis)
	}
	// The upstream physical links are still exonerated.
	for _, banned := range []Link{link("x1", "x2"), link("a2", "x1"), link("a1", "a2")} {
		if physSet(res)[banned] {
			t.Fatalf("upstream link %v must be exonerated", banned)
		}
	}
}

func TestGreedyTieAddsAllMaxScoreLinks(t *testing.T) {
	// Algorithm 1 lines 12-17: every link tied at the maximum score joins
	// H in the same iteration.
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "a", "b", "c", "d")},
		After:      []*TracePath{tp(0, 1, false, "a")},
	}
	res, err := Tomo(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("a single tied failure set should resolve in 1 iteration, got %d", res.Iterations)
	}
	if len(res.Hypothesis) != 3 {
		t.Fatalf("all 3 tied links belong in H, got %v", res.Hypothesis)
	}
}

func TestGreedyPrefersHigherCoverage(t *testing.T) {
	// Link a->x explains both failures; the per-path suffixes explain one
	// each. The greedy must pick a->x first and stop.
	m := &Measurements{
		NumSensors: 3,
		Before: []*TracePath{
			tp(0, 1, true, "a", "x", "b"),
			tp(0, 2, true, "a", "x", "c"),
		},
		After: []*TracePath{
			tp(0, 1, false, "a"),
			tp(0, 2, false, "a"),
		},
	}
	res, err := Tomo(m)
	if err != nil {
		t.Fatal(err)
	}
	got := hypLinks(res)
	if !got[link("a", "x")] {
		t.Fatalf("shared link must be chosen: %v", res.Hypothesis)
	}
	if len(res.Hypothesis) != 1 {
		t.Fatalf("greedy should stop after the shared link, got %v", res.Hypothesis)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestPerPrefixDisplay(t *testing.T) {
	m := &Measurements{
		NumSensors: 2,
		Before:     []*TracePath{tp(0, 1, true, "s0@10", "a@10", "b@20", "s1@20")},
		After:      []*TracePath{tp(0, 1, false, "s0@10")},
	}
	res, err := Run(m, Options{LogicalLinks: true, UseReroutes: true, PerPrefixLogical: true})
	if err != nil {
		t.Fatal(err)
	}
	sawLogical := false
	for _, h := range res.Hypothesis {
		if IsLogical(h.Link.From) {
			sawLogical = true
			if d := Display(h.Link.From); d != "b(p1)" {
				t.Fatalf("per-prefix display = %q, want b(p1)", d)
			}
		}
	}
	if !sawLogical {
		t.Fatalf("per-prefix expansion should produce logical links: %v", res.Hypothesis)
	}
}
