package core

import (
	"math/bits"
	"sort"

	"netdiag/internal/pool"
)

// bitEngine is the default diagnosis pipeline: every Link is interned to a
// dense int32 ID, set membership becomes packed bitsets, greedy scoring is
// popcount over word-ANDs, and the greedy loop maintains incremental
// per-candidate scores instead of rescoring every candidate each round.
//
// Equivalence with the map-based reference (EngineMap) is structural, not
// accidental: every user-visible iteration (candidate scan, cluster pairs,
// hypothesis order) runs in the same sorted-Link order as the reference,
// scores are the same float expression over the same integer counts, and
// the delta updates below are exact (see DESIGN.md, "Bitset diagnosis
// core"). The differential harness pins byte-identical wire output.
type bitEngine struct {
	e  *engine
	in *linkInterner

	nPairs int

	all     bitset // before-path links: the diagnosis space
	working bitset
	cand    bitset

	// failLinks / rerLinks hold each constraint set as interned link IDs in
	// path order — the bitset analogue of obsSet.links.
	failLinks [][]int32
	rerLinks  [][]int32

	// failInc / rerInc transpose the sets: per link ID, the bitset of
	// failure / reroute set indices containing that link. Rows are nil for
	// links in no set. pairInc is the per-link before-path pair incidence,
	// built only for ND-LG (the sole consumer, clustering rule ii).
	failInc []bitset
	rerInc  []bitset
	pairInc []bitset

	// unexplF / unexplR mask the not-yet-explained set indices; the counts
	// are maintained alongside so the greedy termination check is O(1).
	unexplF, unexplR   bitset
	nUnexplF, nUnexplR int

	// extraCover extends a candidate's explanatory reach (physical parents'
	// logical children, Looking-Glass clusters), as interned IDs.
	extraCover map[int32][]int32

	// candOrder lists candidate link IDs sorted by Link — the deterministic
	// scan order shared by clustering and every greedy round. alive flags
	// positions not yet selected; candCount is the live total.
	candOrder []int32
	alive     []bool
	candCount int

	// coverF / coverR give each candidate position its full cover incidence
	// ({link} ∪ extraCover, OR-folded). Candidates without extraCover share
	// the failInc/rerInc row pointer — no per-candidate allocation.
	coverF, coverR []bitset
	// coveredByF / coveredByR transpose the covers: per set index, the
	// candidate positions covering it. Each (position, set) pair appears
	// exactly once, so the delta decrement in retireSets is exact.
	coveredByF, coveredByR [][]int32
	// fCnt / rCnt are the incremental integer scores: how many unexplained
	// failure / reroute sets each candidate position currently covers.
	fCnt, rCnt []int
}

func newBitEngine(e *engine) *bitEngine {
	return &bitEngine{
		e:          e,
		in:         newLinkInterner(),
		extraCover: map[int32][]int32{},
	}
}

// run executes the bitset pipeline and returns the greedy iteration and
// unexplained-failure counts, filling e.hyp for shared attribution.
func (b *bitEngine) run(idx *meshIndex) (iters, unexplained int, err error) {
	e := b.e
	end := e.phase("build_sets")
	b.buildSets(idx)
	end()
	if err := e.ctx.Err(); err != nil {
		return 0, 0, err
	}
	end = e.phase("candidates")
	b.exonerateWithdrawalEdges()
	b.buildCandidates()
	b.addPhysParents()
	b.buildIncidence()
	b.applyIGPDowns()
	b.orderCandidates()
	if e.opts.LG != nil {
		b.buildClusters()
	}
	end()
	if err := e.ctx.Err(); err != nil {
		return 0, 0, err
	}
	end = e.phase("greedy")
	iters, err = b.greedy()
	end()
	if err != nil {
		return iters, 0, err
	}
	return iters, b.nUnexplF, nil
}

// buildSets derives failure sets, reroute sets and working constraints,
// interning every link on first sight (sorted pair order, path order).
func (b *bitEngine) buildSets(idx *meshIndex) {
	e := b.e
	b.nPairs = len(idx.pairs)
	lgMode := e.opts.LG != nil
	for pi, pr := range idx.pairs {
		ap := idx.after[pr]
		bp := idx.before[pr]
		if bp == nil {
			continue
		}
		bLinks := bp.Links()
		bIDs := make([]int32, len(bLinks))
		for i, l := range bLinks {
			id := b.in.id(l)
			bIDs[i] = id
			setGrow(&b.all, id)
			if lgMode {
				b.pairRow(id).set(int32(pi))
			}
		}
		if !bp.OK {
			continue // no pre-failure baseline for this pair
		}
		switch {
		case ap.OK && e.opts.UseReroutes:
			aLinks := ap.Links()
			for _, l := range aLinks {
				setGrow(&b.working, b.in.id(l))
			}
			if !pathsEquivalent(bp, ap) {
				if diff := linksNotIn(bLinks, aLinks); len(diff) > 0 {
					ids := make([]int32, len(diff))
					for i, l := range diff {
						ids[i] = b.in.id(l)
					}
					b.rerLinks = append(b.rerLinks, ids)
				}
			}
		case ap.OK:
			// Tomo's view: only the pre-failure route is known, so every
			// link of the old path counts as working (the §2.5 limitation).
			for _, id := range bIDs {
				setGrow(&b.working, id)
			}
		default:
			links := trimByWithdrawals(bp, bLinks, e.opts.Routing)
			if e.opts.UsePartialTraces {
				for _, l := range ap.Links() {
					setGrow(&b.working, b.in.id(l))
				}
			}
			// trimByWithdrawals returns a suffix of bLinks, so the IDs are
			// the matching suffix of bIDs.
			b.failLinks = append(b.failLinks, bIDs[len(bLinks)-len(links):])
		}
	}
	b.unexplF, b.nUnexplF = fullMask(len(b.failLinks))
	b.unexplR, b.nUnexplR = fullMask(len(b.rerLinks))
}

// pairRow returns link id's pair-incidence row, growing the table and
// allocating the row on demand.
func (b *bitEngine) pairRow(id int32) bitset {
	if int(id) >= len(b.pairInc) {
		rows := make([]bitset, int(id)+1+int(id)/2)
		copy(rows, b.pairInc)
		b.pairInc = rows
	}
	if b.pairInc[id] == nil {
		b.pairInc[id] = newBitset(b.nPairs)
	}
	return b.pairInc[id]
}

// pairAt is pairRow without allocation: nil when the link never appeared on
// a before path (its pair incidence is empty).
func (b *bitEngine) pairAt(id int32) bitset {
	if int(id) < len(b.pairInc) {
		return b.pairInc[id]
	}
	return nil
}

// fullMask returns a bitset with bits 0..n-1 set, and n.
func fullMask(n int) (bitset, int) {
	m := newBitset(n)
	for i := 0; i < n; i++ {
		m[i>>6] |= 1 << (uint(i) & 63)
	}
	return m, n
}

func (b *bitEngine) exonerateWithdrawalEdges() {
	ri := b.e.opts.Routing
	if ri == nil {
		return
	}
	for _, w := range ri.Withdrawals {
		setGrow(&b.working, b.in.id(Link{From: w.At, To: w.From}))
		setGrow(&b.working, b.in.id(Link{From: w.From, To: w.At}))
	}
}

func (b *bitEngine) buildCandidates() {
	e := b.e
	add := func(sets [][]int32) {
		for _, ids := range sets {
			for _, id := range ids {
				if b.working.has(id) {
					continue
				}
				if !e.opts.KeepUnidentified {
					l := b.in.links[id]
					if e.nodeUH[l.From] || e.nodeUH[l.To] {
						continue
					}
				}
				setGrow(&b.cand, id)
			}
		}
	}
	add(b.failLinks)
	add(b.rerLinks)
}

// addPhysParents mirrors engine.addPhysParents over interned IDs. Parents
// are visited in sorted-Link order so interning stays deterministic; a
// child the interner has never seen was on no path and no constraint, so
// it is neither working nor a candidate.
func (b *bitEngine) addPhysParents() {
	e := b.e
	if !e.opts.LogicalLinks {
		return
	}
	parents := make([]Link, 0, len(e.exp.children))
	for p := range e.exp.children {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool {
		if parents[i].From != parents[j].From {
			return parents[i].From < parents[j].From
		}
		return parents[i].To < parents[j].To
	})
	for _, parent := range parents {
		if pid, ok := b.in.lookup(parent); ok && b.working.has(pid) {
			continue
		}
		exonerated := false
		var covered []int32
		for _, c := range e.exp.children[parent] {
			cid, ok := b.in.lookup(c)
			if !ok {
				continue
			}
			if b.working.has(cid) {
				exonerated = true
				break
			}
			if b.cand.has(cid) {
				covered = append(covered, cid)
			}
		}
		if exonerated || len(covered) == 0 {
			continue
		}
		pid := b.in.id(parent)
		setGrow(&b.cand, pid)
		b.extraCover[pid] = append(b.extraCover[pid], covered...)
	}
}

// buildIncidence transposes the constraint sets into per-link incidence
// rows. It runs after addPhysParents — the last point where new links are
// interned — so the row tables cover the final ID universe.
func (b *bitEngine) buildIncidence() {
	n := b.in.size()
	b.failInc = make([]bitset, n)
	b.rerInc = make([]bitset, n)
	nF, nR := len(b.failLinks), len(b.rerLinks)
	for s, ids := range b.failLinks {
		for _, id := range ids {
			if b.failInc[id] == nil {
				b.failInc[id] = newBitset(nF)
			}
			b.failInc[id].set(int32(s))
		}
	}
	for s, ids := range b.rerLinks {
		for _, id := range ids {
			if b.rerInc[id] == nil {
				b.rerInc[id] = newBitset(nR)
			}
			b.rerInc[id].set(int32(s))
		}
	}
}

// applyIGPDowns adds AS-X's directly observed failed links to the
// hypothesis and retires the sets containing them (the link itself only —
// extraCover does not apply, matching the reference engine).
func (b *bitEngine) applyIGPDowns() {
	e := b.e
	if e.opts.Routing == nil {
		return
	}
	for _, l := range e.opts.Routing.IGPDownLinks {
		id, ok := b.in.lookup(l)
		if !ok || !b.all.has(id) {
			continue
		}
		e.hyp = append(e.hyp, l)
		b.cand.clear(id)
		b.retireMask(b.failInc[id], b.unexplF, &b.nUnexplF)
		b.retireMask(b.rerInc[id], b.unexplR, &b.nUnexplR)
	}
}

// retireMask clears inc's bits from unexpl, decrementing the live count.
func (b *bitEngine) retireMask(inc, unexpl bitset, n *int) {
	for w, v := range inc {
		if d := v & unexpl[w]; d != 0 {
			unexpl[w] &^= d
			*n -= bits.OnesCount64(d)
		}
	}
}

// orderCandidates freezes the candidate scan order: link IDs sorted by
// Link, exactly the reference engine's cand.sorted(). Greedy removals only
// flip alive flags, so the surviving order equals a fresh sort each round.
func (b *bitEngine) orderCandidates() {
	var ids []int32
	for w, v := range b.cand {
		for v != 0 {
			t := bits.TrailingZeros64(v)
			v &= v - 1
			ids = append(ids, int32(w*wordBits+t))
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		li, lj := b.in.links[ids[i]], b.in.links[ids[j]]
		if li.From != lj.From {
			return li.From < lj.From
		}
		return li.To < lj.To
	})
	b.candOrder = ids
	b.alive = make([]bool, len(ids))
	for i := range b.alive {
		b.alive[i] = true
	}
	b.candCount = len(ids)
}

// buildClusters groups unidentified candidate links under the §3.4 rules;
// rule (ii) — never on the same before path — is one AND-any sweep over
// the pair-incidence rows instead of a per-pair map probe.
func (b *bitEngine) buildClusters() {
	e := b.e
	var unid []int32
	for _, id := range b.candOrder {
		l := b.in.links[id]
		if e.nodeUH[l.From] || e.nodeUH[l.To] {
			unid = append(unid, id)
		}
	}
	keys := make([][2]endpointKey, len(unid))
	fcounts := make([]int, len(unid))
	for i, id := range unid {
		l := b.in.links[id]
		keys[i] = [2]endpointKey{
			makeEndpointKey(l.From, e.nodeUH[l.From], e.uhTags),
			makeEndpointKey(l.To, e.nodeUH[l.To], e.uhTags),
		}
		fcounts[i] = b.failInc[id].popcount()
	}
	for i := range unid {
		if !keys[i][0].ok || !keys[i][1].ok {
			continue
		}
		for j := range unid {
			if i == j || !keys[j][0].ok || !keys[j][1].ok {
				continue
			}
			if keys[i][0] != keys[j][0] || keys[i][1] != keys[j][1] {
				continue // rule (i): endpoint identities/tags must match
			}
			if fcounts[i] != fcounts[j] {
				continue // rule (iii): same number of failure sets
			}
			if andAny(b.pairAt(unid[i]), b.pairAt(unid[j])) {
				continue // rule (ii): never on the same path
			}
			b.extraCover[unid[i]] = append(b.extraCover[unid[i]], unid[j])
		}
	}
}

// prepareCover materializes each candidate's cover incidence and the
// set→candidates transpose driving the incremental score updates. A
// candidate without extraCover shares its incidence row pointer — the
// per-candidate cover union costs nothing (this replaces the reference
// engine's per-candidate-per-iteration append in coverCounts).
func (b *bitEngine) prepareCover() {
	nF, nR := len(b.failLinks), len(b.rerLinks)
	n := len(b.candOrder)
	b.coverF = make([]bitset, n)
	b.coverR = make([]bitset, n)
	for pos, id := range b.candOrder {
		ex := b.extraCover[id]
		if len(ex) == 0 {
			b.coverF[pos] = b.failInc[id]
			b.coverR[pos] = b.rerInc[id]
			continue
		}
		cf := newBitset(nF)
		if row := b.failInc[id]; row != nil {
			copy(cf, row)
		}
		cr := newBitset(nR)
		if row := b.rerInc[id]; row != nil {
			copy(cr, row)
		}
		for _, cid := range ex {
			if row := b.failInc[cid]; row != nil {
				orInto(cf, row)
			}
			if row := b.rerInc[cid]; row != nil {
				orInto(cr, row)
			}
		}
		b.coverF[pos] = cf
		b.coverR[pos] = cr
	}
	b.coveredByF = transposeCover(b.coverF, nF)
	b.coveredByR = transposeCover(b.coverR, nR)
}

// transposeCover inverts candidate→sets incidence into set→candidates
// lists. Rows are bitsets, so each (candidate, set) pair appears once.
func transposeCover(cover []bitset, nSets int) [][]int32 {
	out := make([][]int32, nSets)
	for pos, row := range cover {
		for w, v := range row {
			base := w * wordBits
			for v != 0 {
				t := bits.TrailingZeros64(v)
				v &= v - 1
				out[base+t] = append(out[base+t], int32(pos))
			}
		}
	}
	return out
}

// initScores computes the starting integer scores — how many unexplained
// failure / reroute sets each candidate covers — fanned out over the
// configured workers. Each worker writes only its own slots, so the counts
// (and therefore the hypothesis) are identical at any parallelism.
func (b *bitEngine) initScores() {
	b.fCnt = make([]int, len(b.candOrder))
	b.rCnt = make([]int, len(b.candOrder))
	_ = pool.ForEachM(b.e.ctx, b.e.workers, len(b.candOrder), func(pos int) error {
		b.fCnt[pos] = andPopcount(b.coverF[pos], b.unexplF)
		b.rCnt[pos] = andPopcount(b.coverR[pos], b.unexplR)
		return nil
	}, b.e.poolM)
}

// greedy is the weighted greedy minimum-hitting-set of Algorithm 1 over
// incremental scores: each round scans the live candidates (sorted-Link
// order), selects every maximum-score candidate, retires the newly
// explained sets, and decrements the scores of exactly the candidates
// covering those sets. The delta equals a full rescore: a candidate's
// count changes only when a set it covers flips to explained, and each
// such (candidate, set) pair is visited exactly once via coveredBy.
func (b *bitEngine) greedy() (int, error) {
	e := b.e
	b.prepareCover()
	b.initScores()
	fw, rw := e.opts.FailureWeight, e.opts.RerouteWeight
	bestBuf := make([]int32, len(b.candOrder))
	scratchF := newBitset(len(b.failLinks))
	scratchR := newBitset(len(b.rerLinks))
	iters := 0
	for {
		if err := e.ctx.Err(); err != nil {
			return iters, err
		}
		if b.nUnexplF+b.nUnexplR == 0 || b.candCount == 0 {
			return iters, nil
		}
		iters++
		endIter := e.phaseIter("greedy_iter", iters)
		best, k := scanBest(b.candOrder, b.alive, b.fCnt, b.rCnt, fw, rw, bestBuf)
		if best == 0 {
			endIter()
			return iters, nil // remaining sets are unexplainable
		}
		for i := 0; i < k; i++ {
			pos := bestBuf[i]
			id := b.candOrder[pos]
			e.hyp = append(e.hyp, b.in.links[id])
			b.alive[pos] = false
			b.candCount--
			accumDelta(b.coverF[pos], b.unexplF, scratchF)
			accumDelta(b.coverR[pos], b.unexplR, scratchR)
		}
		b.nUnexplF -= retireSets(scratchF, b.unexplF, b.coveredByF, b.fCnt)
		b.nUnexplR -= retireSets(scratchR, b.unexplR, b.coveredByR, b.rCnt)
		endIter()
	}
}

// scanBest finds the maximum score over live candidates and writes every
// position attaining it into bestBuf (in scan order), returning the score
// and the count. The comparison sequence matches the reference engine's
// scan exactly, including the best > 0 tie rule.
//
//ndlint:hotpath
func scanBest(order []int32, alive []bool, fCnt, rCnt []int, fw, rw float64, bestBuf []int32) (float64, int) {
	best := 0.0
	k := 0
	for pos := range order {
		if !alive[pos] {
			continue
		}
		s := fw*float64(fCnt[pos]) + rw*float64(rCnt[pos])
		switch {
		case s > best:
			best = s
			bestBuf[0] = int32(pos)
			k = 1
		case s == best && best > 0:
			bestBuf[k] = int32(pos)
			k++
		}
	}
	return best, k
}

// accumDelta ORs the still-unexplained part of cover into scratch: the
// sets this selection newly explains.
//
//ndlint:hotpath
func accumDelta(cover, unexpl, scratch bitset) {
	for w, v := range cover {
		if d := v & unexpl[w]; d != 0 {
			scratch[w] |= d
		}
	}
}

// retireSets consumes the delta mask: clears those sets from unexpl (and
// from delta, re-zeroing the scratch for the next round), and decrements
// the score of every candidate covering a retired set. Returns the number
// of sets retired.
//
//ndlint:hotpath
func retireSets(delta, unexpl bitset, coveredBy [][]int32, cnt []int) int {
	removed := 0
	for w := range delta {
		d := delta[w]
		if d == 0 {
			continue
		}
		delta[w] = 0
		unexpl[w] &^= d
		removed += bits.OnesCount64(d)
		base := w * wordBits
		for d != 0 {
			t := bits.TrailingZeros64(d)
			d &= d - 1
			for _, pos := range coveredBy[base+t] {
				cnt[pos]--
			}
		}
	}
	return removed
}
