package core

import (
	"context"
	"log/slog"
	"sort"

	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Options selects the diagnosis features. The zero value is the plain
// multi-AS Boolean tomography algorithm (Tomo, paper §2.4); the named
// constructors below configure the paper's algorithm variants.
type Options struct {
	// LogicalLinks enables the per-neighbor logical-link expansion of
	// §3.1, which lets the algorithm localize BGP export
	// misconfigurations ("partial" link failures).
	LogicalLinks bool
	// UseReroutes enables the reroute sets of §3.2: post-failure paths
	// define the working constraints, and rerouted-but-working paths
	// contribute score to the links they abandoned.
	UseReroutes bool
	// FailureWeight and RerouteWeight are the score weights a and b of
	// §3.2. Zero means 1 (the paper's setting).
	FailureWeight, RerouteWeight float64
	// Routing supplies AS-X's control-plane observations (§3.3).
	Routing *RoutingInfo
	// LG enables Looking-Glass UH mapping and link clustering (§3.4).
	LG LookingGlass
	// KeepUnidentified keeps links with unidentified endpoints in the
	// candidate set. ND-LG sets this; ND-bgpigp "simply ignores any
	// unidentified link" (§5.4).
	KeepUnidentified bool
	// UsePartialTraces is an extension beyond the paper: hops that still
	// responded on a failed post-failure traceroute exonerate the links
	// they traversed. Off by default; the ablation bench measures it.
	UsePartialTraces bool
	// PerPrefixLogical switches the logical-link expansion to per-prefix
	// granularity — the finest (and largest) graph §3.1 discusses before
	// settling on per-neighbor. Only meaningful with LogicalLinks; kept
	// for the scalability study.
	PerPrefixLogical bool
	// Parallelism bounds the worker count for candidate scoring inside the
	// greedy cover loop. <= 1 runs sequentially; the hypothesis set is
	// identical at any setting because scores land in per-candidate slots
	// and selection scans them in deterministic order.
	Parallelism int
	// Engine selects the diagnosis engine implementation. The zero value
	// (EngineBitset) is the packed-bitset engine; EngineMap selects the
	// original map-based implementation, kept as the reference for
	// differential testing. Both produce byte-identical results.
	Engine EngineKind
	// Telemetry receives the run's metrics: the "diagnose.runs" counter,
	// per-phase latency histograms ("diagnose.phase.<name>_ns") and the
	// pool metrics of the candidate-scoring fan-out. Setting it (or Logger)
	// also populates Result.Telemetry with the run's phase spans. Nil (the
	// default) disables all of it; telemetry never changes the hypothesis.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, receives a debug-level record per phase and a
	// summary per run, and enables Result.Telemetry like Telemetry does.
	Logger *slog.Logger
}

// EngineKind selects between the two diagnosis engine implementations.
// Both compute the identical hypothesis (the differential harness pins
// byte-identical wire output across every algorithm variant); they differ
// only in representation and speed.
type EngineKind int

const (
	// EngineBitset is the default: every link is interned to a dense int
	// ID during set building, failure/reroute sets and link incidences
	// become packed []uint64 bitsets, greedy scoring is popcount over
	// word-ANDs, and the greedy loop maintains incremental per-candidate
	// scores updated only for candidates touched by each selection.
	EngineBitset EngineKind = iota
	// EngineMap is the original map-based implementation — per-link Go
	// maps and full per-iteration rescoring. It is kept as the readable
	// reference the bitset engine is differentially tested against, and
	// as the map side of the diagnose benchmarks.
	EngineMap
)

// Tomo runs the multi-AS Boolean tomography baseline of §2.
func Tomo(m *Measurements) (*Result, error) { return Run(m, Options{}) }

// NDEdge runs NetDiagnoser with logical links and reroute information
// (§3.1–3.2) — the variant deployable without ISP cooperation.
func NDEdge(m *Measurements) (*Result, error) {
	return Run(m, Options{LogicalLinks: true, UseReroutes: true})
}

// NDBgpIgp runs ND-edge augmented with AS-X's IGP link-down events and BGP
// withdrawals (§3.3).
func NDBgpIgp(m *Measurements, ri *RoutingInfo) (*Result, error) {
	return Run(m, Options{LogicalLinks: true, UseReroutes: true, Routing: ri})
}

// NDLG runs the full NetDiagnoser with Looking-Glass support for
// traceroute-blocking ASes (§3.4).
func NDLG(m *Measurements, ri *RoutingInfo, lg LookingGlass) (*Result, error) {
	return Run(m, Options{
		LogicalLinks: true, UseReroutes: true,
		Routing: ri, LG: lg, KeepUnidentified: true,
	})
}

// obsSet is one constraint set: the failure set of a broken path or the
// reroute set of a rerouted one.
type obsSet struct {
	links     []Link
	set       linkSet
	explained bool
}

func newObsSet(links []Link) *obsSet {
	s := &obsSet{links: links, set: linkSet{}}
	for _, l := range links {
		s.set.add(l)
	}
	return s
}

// engine carries the state of one diagnosis run shared by both engine
// implementations; the fields below the trace handles belong to the
// map-based reference path (EngineMap). The bitset path keeps its own
// interned state in bitEngine.
type engine struct {
	ctx     context.Context
	workers int
	opts    Options
	exp     *expander
	nodeAS  map[Node]topology.ASN
	nodeUH  map[Node]bool
	uhTags  map[Node]asTag

	// trace is non-nil only when the run is observed (Options.Telemetry or
	// Options.Logger); every phase helper is a no-op otherwise.
	trace *telemetry.Trace
	poolM *pool.Metrics

	allLinks linkSet // every link of every before path (diagnosis space)
	// linkPaths maps each before-path link to the sensor pairs whose
	// before path contains it (clustering rule ii).
	linkPaths map[Link]map[pair]bool
	failSets  []*obsSet
	rerSets   []*obsSet
	working   linkSet
	cand      linkSet
	// extraCover extends a candidate's explanatory reach: Looking-Glass
	// clusters (§3.4) and, for a physical interdomain link, its logical
	// children (a physical failure fails all of them).
	extraCover map[Link][]Link
	hyp        []Link
}

// Run executes the configured diagnosis on the measurements.
func Run(m *Measurements, opts Options) (*Result, error) {
	return RunCtx(context.Background(), m, opts)
}

// RunCtx executes the configured diagnosis, honoring ctx: cancellation is
// checked between pipeline phases and on every greedy iteration, so a long
// run aborts promptly with ctx.Err(). The result is identical to Run for an
// uncancelled context.
func RunCtx(ctx context.Context, m *Measurements, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.FailureWeight == 0 {
		opts.FailureWeight = 1
	}
	if opts.RerouteWeight == 0 {
		opts.RerouteWeight = 1
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1 // zero Options stays sequential for compatibility
	}
	e := &engine{
		ctx:        ctx,
		workers:    workers,
		opts:       opts,
		exp:        newExpander(opts.PerPrefixLogical),
		nodeAS:     map[Node]topology.ASN{},
		nodeUH:     map[Node]bool{},
		allLinks:   linkSet{},
		linkPaths:  map[Link]map[pair]bool{},
		working:    linkSet{},
		cand:       linkSet{},
		extraCover: map[Link][]Link{},
	}
	if opts.Telemetry != nil || opts.Logger != nil {
		e.trace = telemetry.NewTrace()
		if opts.Telemetry != nil {
			opts.Telemetry.Counter("diagnose.runs").Inc()
			e.poolM = pool.NewMetrics(opts.Telemetry)
		}
	}

	end := e.phase("validate")
	idx := m.buildIndex()
	err := m.validateIndexed(idx)
	end()
	if err != nil {
		return nil, err
	}

	work := m
	if opts.LogicalLinks {
		end = e.phase("expand")
		work = e.exp.expandAll(m)
		idx = idx.rebind(work)
		end()
	}
	e.collectNodes(work)
	if opts.LG != nil {
		e.uhTags = mapUHs(work, opts.LG)
	}

	var iters, unexplained int
	if opts.Engine == EngineMap {
		iters, unexplained, err = e.runMap(idx)
	} else {
		iters, unexplained, err = newBitEngine(e).run(idx)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{Iterations: iters, UnexplainedFailures: unexplained}
	res.Hypothesis = e.attribute()
	res.Telemetry = e.trace.Spans()
	if opts.Logger != nil {
		opts.Logger.Debug("diagnose done",
			"hypothesis", len(res.Hypothesis),
			"iterations", res.Iterations,
			"unexplained", res.UnexplainedFailures)
	}
	return res, nil
}

// runMap is the map-based reference pipeline: set building, candidate
// construction and the full-rescore greedy loop over linkSet maps. It
// fills e.hyp and returns the iteration and unexplained-failure counts.
func (e *engine) runMap(idx *meshIndex) (iters, unexplained int, err error) {
	end := e.phase("build_sets")
	e.buildSets(idx)
	end()
	if err := e.ctx.Err(); err != nil {
		return 0, 0, err
	}
	end = e.phase("candidates")
	e.exonerateWithdrawalEdges()
	e.buildCandidates()
	e.addPhysParents()
	e.applyIGPDowns()
	if e.opts.LG != nil {
		e.buildClusters()
	}
	end()
	if err := e.ctx.Err(); err != nil {
		return 0, 0, err
	}
	end = e.phase("greedy")
	iters, err = e.greedy()
	end()
	if err != nil {
		return iters, 0, err
	}
	for _, fs := range e.failSets {
		if !fs.explained {
			unexplained++
		}
	}
	return iters, unexplained, nil
}

var noopEnd = func() {}

// phase opens a named span of the run; the returned func closes it, feeds
// the "diagnose.phase.<name>_ns" histogram and logs the phase at debug
// level. On an unobserved run it does nothing and never reads the clock.
func (e *engine) phase(name string) func() { return e.phaseIter(name, 0) }

// phaseIter is phase for one iteration of a repeated phase (iter >= 1).
func (e *engine) phaseIter(name string, iter int) func() {
	if e.trace == nil {
		return noopEnd
	}
	endSpan := e.trace.StartIteration(name, iter)
	start := telemetry.Now()
	return func() {
		endSpan()
		d := telemetry.Since(start)
		if e.opts.Telemetry != nil {
			e.opts.Telemetry.Histogram("diagnose.phase."+name+"_ns", telemetry.DurationBuckets).
				Observe(int64(d))
		}
		if e.opts.Logger != nil {
			if iter > 0 {
				e.opts.Logger.Debug("diagnose phase", "phase", name, "iteration", iter, "duration", d)
			} else {
				e.opts.Logger.Debug("diagnose phase", "phase", name, "duration", d)
			}
		}
	}
}

func (e *engine) collectNodes(m *Measurements) {
	collect := func(paths []*TracePath) {
		for _, p := range paths {
			for _, h := range p.Hops {
				if h.Unidentified {
					e.nodeUH[h.Node] = true
				} else {
					e.nodeAS[h.Node] = h.AS
				}
			}
		}
	}
	collect(m.Before)
	collect(m.After)
}

// buildSets derives failure sets, reroute sets and working constraints.
func (e *engine) buildSets(idx *meshIndex) {
	for _, pr := range idx.pairs {
		ap := idx.after[pr]
		bp := idx.before[pr]
		if bp == nil {
			continue
		}
		bLinks := bp.Links()
		for _, l := range bLinks {
			e.allLinks.add(l)
			mp := e.linkPaths[l]
			if mp == nil {
				mp = map[pair]bool{}
				e.linkPaths[l] = mp
			}
			mp[pr] = true
		}
		if !bp.OK {
			continue // no pre-failure baseline for this pair
		}
		switch {
		case ap.OK && e.opts.UseReroutes:
			aLinks := ap.Links()
			for _, l := range aLinks {
				e.working.add(l)
			}
			if !pathsEquivalent(bp, ap) {
				if diff := linksNotIn(bLinks, aLinks); len(diff) > 0 {
					e.rerSets = append(e.rerSets, newObsSet(diff))
				}
			}
		case ap.OK:
			// Tomo's view: the pair works, and Tomo only knows the
			// pre-failure route, so it (wrongly, when rerouted) marks
			// every link of the old path as working. This is exactly the
			// §2.5 limitation the evaluation exposes.
			for _, l := range bLinks {
				e.working.add(l)
			}
		default:
			links := trimByWithdrawals(bp, bLinks, e.opts.Routing)
			if e.opts.UsePartialTraces {
				for _, l := range ap.Links() {
					e.working.add(l)
				}
			}
			e.failSets = append(e.failSets, newObsSet(links))
		}
	}
}

// pathsEquivalent reports whether two hop sequences are indistinguishable
// to the troubleshooter: same length, identified hops equal, unidentified
// positions aligned (a "*" matches a "*").
func pathsEquivalent(a, b *TracePath) bool {
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		ha, hb := a.Hops[i], b.Hops[i]
		if ha.Unidentified != hb.Unidentified {
			return false
		}
		if !ha.Unidentified && ha.Node != hb.Node {
			return false
		}
	}
	return true
}

// linksNotIn returns the links of a absent from b, preserving order.
func linksNotIn(a, b []Link) []Link {
	inB := linkSet{}
	for _, l := range b {
		inB.add(l)
	}
	var out []Link
	for _, l := range a {
		if !inB.has(l) {
			out = append(out, l)
		}
	}
	return out
}

// exonerateWithdrawalEdges marks the physical link under every observed
// withdrawal as working: the withdrawal message arrived over that very
// session, so the link cannot have failed physically. Its logical
// children (a possible export misconfiguration at the announcing router)
// stay eligible.
func (e *engine) exonerateWithdrawalEdges() {
	if e.opts.Routing == nil {
		return
	}
	for _, w := range e.opts.Routing.Withdrawals {
		e.working.add(Link{From: w.At, To: w.From})
		e.working.add(Link{From: w.From, To: w.At})
	}
}

func (e *engine) buildCandidates() {
	add := func(sets []*obsSet) {
		for _, s := range sets {
			for _, l := range s.links {
				if e.working.has(l) {
					continue
				}
				if !e.opts.KeepUnidentified && (e.nodeUH[l.From] || e.nodeUH[l.To]) {
					continue
				}
				e.cand.add(l)
			}
		}
	}
	add(e.failSets)
	add(e.rerSets)
}

// applyIGPDowns adds AS-X's directly observed failed links to the
// hypothesis and marks the sets they explain.
func (e *engine) applyIGPDowns() {
	if e.opts.Routing == nil {
		return
	}
	for _, l := range e.opts.Routing.IGPDownLinks {
		if !e.allLinks.has(l) {
			continue
		}
		e.hyp = append(e.hyp, l)
		delete(e.cand, l)
		e.explain(l)
	}
}

// explain marks every failure and reroute set containing l as explained.
func (e *engine) explain(l Link) {
	for _, fs := range e.failSets {
		if !fs.explained && fs.set.has(l) {
			fs.explained = true
		}
	}
	for _, rs := range e.rerSets {
		if !rs.explained && rs.set.has(l) {
			rs.explained = true
		}
	}
}

// addPhysParents makes each physical interdomain link a candidate covering
// its logical children. The per-neighbor expansion splits a link's
// observations across next-AS variants; without the parent candidate, a
// whole-link physical failure would have its greedy score diluted across
// the variants and could be missed. The parent is exonerated when any of
// its children (or the link itself) carries a working path — some traffic
// still crosses the physical link, so only per-neighbor (misconfiguration)
// failures remain possible.
func (e *engine) addPhysParents() {
	if !e.opts.LogicalLinks {
		return
	}
	for parent, children := range e.exp.children {
		if e.working.has(parent) {
			continue
		}
		exonerated := false
		var covered []Link
		for _, c := range children {
			if e.working.has(c) {
				exonerated = true
				break
			}
			if e.cand.has(c) {
				covered = append(covered, c)
			}
		}
		if exonerated || len(covered) == 0 {
			continue
		}
		e.cand.add(parent)
		e.extraCover[parent] = append(e.extraCover[parent], covered...)
	}
}

// buildClusters groups unidentified candidate links that could be the same
// physical link under the paper's three rules (§3.4).
func (e *engine) buildClusters() {
	var unid []Link
	for _, l := range e.cand.sorted() {
		if e.nodeUH[l.From] || e.nodeUH[l.To] {
			unid = append(unid, l)
		}
	}
	keys := make([][2]endpointKey, len(unid))
	fcounts := make([]int, len(unid))
	for i, l := range unid {
		keys[i] = [2]endpointKey{
			makeEndpointKey(l.From, e.nodeUH[l.From], e.uhTags),
			makeEndpointKey(l.To, e.nodeUH[l.To], e.uhTags),
		}
		for _, fs := range e.failSets {
			if fs.set.has(l) {
				fcounts[i]++
			}
		}
	}
	for i := range unid {
		if !keys[i][0].ok || !keys[i][1].ok {
			continue
		}
		for j := range unid {
			if i == j || !keys[j][0].ok || !keys[j][1].ok {
				continue
			}
			if keys[i][0] != keys[j][0] || keys[i][1] != keys[j][1] {
				continue // rule (i): endpoint identities/tags must match
			}
			if fcounts[i] != fcounts[j] {
				continue // rule (iii): same number of failure sets
			}
			if sharesPath(e.linkPaths[unid[i]], e.linkPaths[unid[j]]) {
				continue // rule (ii): never on the same path
			}
			e.extraCover[unid[i]] = append(e.extraCover[unid[i]], unid[j])
		}
	}
}

//ndlint:hotpath
func sharesPath(a, b map[pair]bool) bool {
	for p := range a {
		if b[p] {
			return true
		}
	}
	return false
}

// greedy runs the weighted greedy minimum-hitting-set of Algorithm 1,
// extended with reroute sets (§3.2) and link clusters (§3.4). It returns
// the number of iterations. Candidate scores are computed concurrently
// over e.workers goroutines (each score reads only the sets frozen for
// this iteration and writes its own slot), then scanned in sorted-link
// order, so the hypothesis is identical at any parallelism. Cancellation
// is checked once per iteration.
func (e *engine) greedy() (int, error) {
	iters := 0
	for {
		if err := e.ctx.Err(); err != nil {
			return iters, err
		}
		remaining := 0
		for _, fs := range e.failSets {
			if !fs.explained {
				remaining++
			}
		}
		for _, rs := range e.rerSets {
			if !rs.explained {
				remaining++
			}
		}
		if remaining == 0 || len(e.cand) == 0 {
			return iters, nil
		}
		iters++
		endIter := e.phaseIter("greedy_iter", iters)

		cands := e.cand.sorted()
		scores := make([]float64, len(cands))
		_ = pool.ForEachM(e.ctx, e.workers, len(cands), func(i int) error {
			f, r := e.coverCounts(cands[i])
			scores[i] = e.opts.FailureWeight*float64(f) + e.opts.RerouteWeight*float64(r)
			return nil
		}, e.poolM)
		best := 0.0
		var bestLinks []Link
		for i, l := range cands {
			switch {
			case scores[i] > best:
				best = scores[i]
				bestLinks = bestLinks[:0]
				bestLinks = append(bestLinks, l)
			case scores[i] == best && best > 0:
				bestLinks = append(bestLinks, l)
			}
		}
		if best == 0 {
			endIter()
			return iters, nil // remaining sets are unexplainable
		}
		for _, l := range bestLinks {
			e.hyp = append(e.hyp, l)
			delete(e.cand, l)
			e.explain(l)
			for _, cl := range e.extraCover[l] {
				e.explain(cl)
			}
		}
		endIter()
	}
}

// coverCounts returns how many unexplained failure and reroute sets link l
// (together with its cluster) intersects.
//ndlint:hotpath
func (e *engine) coverCounts(l Link) (fails, reroutes int) {
	cover := append([]Link{l}, e.extraCover[l]...)
	for _, fs := range e.failSets {
		if fs.explained {
			continue
		}
		for _, c := range cover {
			if fs.set.has(c) {
				fails++
				break
			}
		}
	}
	for _, rs := range e.rerSets {
		if rs.explained {
			continue
		}
		for _, c := range cover {
			if rs.set.has(c) {
				reroutes++
				break
			}
		}
	}
	return fails, reroutes
}

// attribute builds the reported hypothesis entries with physical and AS
// attribution.
func (e *engine) attribute() []HypLink {
	out := make([]HypLink, 0, len(e.hyp))
	seen := linkSet{}
	for _, l := range e.hyp {
		if seen.has(l) {
			continue
		}
		seen.add(l)
		h := HypLink{Link: l}
		phys := e.exp.physical(l)
		if !e.nodeUH[phys.From] && !e.nodeUH[phys.To] {
			h.Phys = phys
			h.PhysKnown = true
		}
		h.ASes = e.linkASes(phys)
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.From != out[j].Link.From {
			return out[i].Link.From < out[j].Link.From
		}
		return out[i].Link.To < out[j].Link.To
	})
	return out
}

func (e *engine) linkASes(l Link) []topology.ASN {
	set := map[topology.ASN]bool{}
	for _, n := range []Node{l.From, l.To} {
		if e.nodeUH[n] {
			for _, a := range e.uhTags[n] {
				set[a] = true
			}
		} else if a, ok := e.nodeAS[n]; ok {
			set[a] = true
		}
	}
	out := make([]topology.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedPairs(m map[pair]*TracePath) []pair {
	out := make([]pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		return out[i].dst < out[j].dst
	})
	return out
}
