// Package core implements the NetDiagnoser diagnosis algorithms of the
// paper (CoNEXT 2007): multi-AS Boolean tomography (Tomo, §2), logical
// links and reroute information (ND-edge, §3.1–3.2), control-plane
// augmentation (ND-bgpigp, §3.3), and Looking-Glass-assisted diagnosis
// under blocked traceroutes (ND-LG, §3.4), plus the SCFS baseline of
// Duffield and the diagnosability metric of §4.
//
// The package is measurement-driven: it consumes traceroute-style hop
// sequences (before and after a failure event) and optional routing events,
// and produces a hypothesis set of links whose failure explains the
// observations. It knows nothing about the simulator; adapters feed it.
package core

import (
	"fmt"
	"sort"

	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Node identifies a vertex of the diagnosis graph: a router address, a
// unique placeholder for an unidentified hop ("*"), or a logical node
// introduced by the per-neighbor logical-link expansion of §3.1.
type Node string

// Link is a directed edge of the diagnosis graph.
type Link struct {
	From, To Node
}

// String renders the link as "from->to".
func (l Link) String() string { return string(l.From) + "->" + string(l.To) }

// Hop is one traceroute hop as the troubleshooter sees it. AS is zero and
// Unidentified true for hops inside traceroute-blocking ASes.
type Hop struct {
	Node         Node
	AS           topology.ASN
	Unidentified bool
}

// TracePath is a traceroute between two sensors. Hops starts at the source
// sensor; when OK it ends at the destination sensor, otherwise it is the
// partial path up to where probing stopped.
type TracePath struct {
	SrcSensor, DstSensor int
	Hops                 []Hop
	OK                   bool
}

// Links returns the directed links along the path.
func (p *TracePath) Links() []Link {
	if len(p.Hops) < 2 {
		return nil
	}
	out := make([]Link, 0, len(p.Hops)-1)
	for i := 0; i+1 < len(p.Hops); i++ {
		out = append(out, Link{From: p.Hops[i].Node, To: p.Hops[i+1].Node})
	}
	return out
}

// pair identifies a sensor pair.
type pair struct{ src, dst int }

// Measurements is the full input of a diagnosis round: the full-mesh
// traceroutes taken before (T-) and after (T+) the failure event. The
// reachability matrix R of the paper is the OK flags of After.
type Measurements struct {
	NumSensors int
	Before     []*TracePath
	After      []*TracePath
}

// meshIndex is the per-pair lookup of a measurement set plus the sorted
// pair universe. It is computed once per diagnosis run — validation and
// set building share it — and rebound (not resorted) onto the logically
// expanded copy of the measurements, whose pair space is identical.
type meshIndex struct {
	before, after map[pair]*TracePath
	// pairs is the after-pair universe sorted by (src, dst): the
	// deterministic iteration order of set building.
	pairs []pair
}

// buildIndex computes the measurement index: both per-pair maps and the
// sorted after-pair order.
func (m *Measurements) buildIndex() *meshIndex {
	idx := &meshIndex{
		before: make(map[pair]*TracePath, len(m.Before)),
		after:  make(map[pair]*TracePath, len(m.After)),
	}
	for _, p := range m.Before {
		idx.before[pair{p.SrcSensor, p.DstSensor}] = p
	}
	for _, p := range m.After {
		idx.after[pair{p.SrcSensor, p.DstSensor}] = p
	}
	idx.pairs = sortedPairs(idx.after)
	return idx
}

// rebind re-keys the index onto an expanded copy of the measurements. The
// expansion rewrites paths one-for-one, so the pair universe and its sort
// carry over; only the path pointers change.
func (idx *meshIndex) rebind(work *Measurements) *meshIndex {
	out := &meshIndex{
		before: make(map[pair]*TracePath, len(work.Before)),
		after:  make(map[pair]*TracePath, len(work.After)),
		pairs:  idx.pairs,
	}
	for _, p := range work.Before {
		out.before[pair{p.SrcSensor, p.DstSensor}] = p
	}
	for _, p := range work.After {
		out.after[pair{p.SrcSensor, p.DstSensor}] = p
	}
	return out
}

// ValidationError reports malformed measurements: which mesh ("before" or
// "after") and sensor pair the offending path belongs to, and why it was
// rejected. Every diagnosis entry point validates its input and returns a
// *ValidationError that callers can extract with errors.As.
type ValidationError struct {
	// Mesh is "before" or "after".
	Mesh string
	// Src, Dst are the sensor indices of the offending path.
	Src, Dst int
	// Reason describes the defect.
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: %s path %d->%d invalid: %s", e.Mesh, e.Src, e.Dst, e.Reason)
}

// Validate checks the measurements are well-formed: sensor indices in
// range, hop lists non-empty, and each After pair also measured Before.
// A failure is reported as a *ValidationError.
func (m *Measurements) Validate() error {
	return m.validateIndexed(m.buildIndex())
}

// validateIndexed is Validate over a prebuilt index, so a diagnosis run
// indexes its input exactly once.
func (m *Measurements) validateIndexed(idx *meshIndex) error {
	before := idx.before
	check := func(p *TracePath, mesh string) *ValidationError {
		if p.SrcSensor < 0 || p.SrcSensor >= m.NumSensors ||
			p.DstSensor < 0 || p.DstSensor >= m.NumSensors {
			return &ValidationError{Mesh: mesh, Src: p.SrcSensor, Dst: p.DstSensor,
				Reason: fmt.Sprintf("out of sensor range %d", m.NumSensors)}
		}
		if len(p.Hops) == 0 {
			return &ValidationError{Mesh: mesh, Src: p.SrcSensor, Dst: p.DstSensor,
				Reason: "no hops"}
		}
		return nil
	}
	for _, p := range m.Before {
		if err := check(p, "before"); err != nil {
			return err
		}
	}
	for _, p := range m.After {
		if err := check(p, "after"); err != nil {
			return err
		}
		if _, ok := before[pair{p.SrcSensor, p.DstSensor}]; !ok {
			return &ValidationError{Mesh: "after", Src: p.SrcSensor, Dst: p.DstSensor,
				Reason: "no before measurement"}
		}
	}
	return nil
}

// linkSet is a set of links with deterministic iteration helpers.
type linkSet map[Link]struct{}

func (s linkSet) add(l Link)      { s[l] = struct{}{} }
func (s linkSet) has(l Link) bool { _, ok := s[l]; return ok }
func (s linkSet) sorted() []Link {
	out := make([]Link, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// HypLink is one entry of the hypothesis set, carrying both the diagnosis
// link (possibly logical or unidentified) and its physical/AS attribution
// for reporting and evaluation.
type HypLink struct {
	// Link is the edge in diagnosis space (may be logical or involve
	// unidentified hops).
	Link Link
	// Phys is the corresponding physical directed link when known (logical
	// links collapse to the interdomain link they annotate); zero-valued
	// when the link involves unidentified hops.
	Phys Link
	// PhysKnown reports whether Phys is meaningful.
	PhysKnown bool
	// ASes lists the candidate ASes containing this link: both endpoint
	// ASes for an identified link, the Looking-Glass tags for an
	// unidentified one. Sorted ascending.
	ASes []topology.ASN
}

// Result is the output of a diagnosis: the hypothesis set H.
type Result struct {
	// Hypothesis is H, sorted by link.
	Hypothesis []HypLink
	// UnexplainedFailures counts failed paths no candidate could explain
	// (should be zero; non-zero indicates inconsistent measurements).
	UnexplainedFailures int
	// Iterations is the number of greedy rounds taken.
	Iterations int
	// Telemetry holds the timed phase spans of this run (validate, expand,
	// build_sets, candidates, greedy, and one greedy_iter span per round).
	// It is populated only when the run was configured with a telemetry
	// registry or logger (Options.Telemetry / Options.Logger); otherwise nil.
	Telemetry []telemetry.Span
}

// PhysLinks returns the deduplicated physical links of the hypothesis,
// sorted. Links without a known physical identity are skipped.
func (r *Result) PhysLinks() []Link {
	s := linkSet{}
	for _, h := range r.Hypothesis {
		if h.PhysKnown {
			s.add(h.Phys)
		}
	}
	return s.sorted()
}

// ASes returns the union of the hypothesis links' AS attributions, sorted.
func (r *Result) ASes() []topology.ASN {
	set := map[topology.ASN]bool{}
	for _, h := range r.Hypothesis {
		for _, a := range h.ASes {
			set[a] = true
		}
	}
	out := make([]topology.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
