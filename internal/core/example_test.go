package core_test

import (
	"fmt"

	"netdiag/internal/core"
)

// ExampleTomo diagnoses the paper's Figure 1 scenario: the path s1->s2
// breaks while s1->s3 keeps working, so only the four links the working
// path cannot exonerate remain suspects.
func ExampleTomo() {
	hops := func(names ...string) []core.Hop {
		var hs []core.Hop
		for _, n := range names {
			hs = append(hs, core.Hop{Node: core.Node(n), AS: 1})
		}
		return hs
	}
	m := &core.Measurements{
		NumSensors: 3,
		Before: []*core.TracePath{
			{SrcSensor: 0, DstSensor: 1, OK: true,
				Hops: hops("s1", "r1", "r3", "r6", "r7", "r9", "r11", "s2")},
			{SrcSensor: 0, DstSensor: 2, OK: true,
				Hops: hops("s1", "r1", "r3", "r6", "r8", "r10", "s3")},
		},
		After: []*core.TracePath{
			{SrcSensor: 0, DstSensor: 1, OK: false,
				Hops: hops("s1", "r1", "r3", "r6", "r7", "r9")},
			{SrcSensor: 0, DstSensor: 2, OK: true,
				Hops: hops("s1", "r1", "r3", "r6", "r8", "r10", "s3")},
		},
	}
	res, err := core.Tomo(m)
	if err != nil {
		panic(err)
	}
	for _, h := range res.Hypothesis {
		fmt.Println(h.Link)
	}
	// Output:
	// r11->s2
	// r6->r7
	// r7->r9
	// r9->r11
}

// ExampleSCFS runs Duffield's tree baseline on the same Figure 1 tree:
// SCFS only marks the link nearest the source consistent with the bad
// destination.
func ExampleSCFS() {
	hops := func(names ...string) []core.Hop {
		var hs []core.Hop
		for _, n := range names {
			hs = append(hs, core.Hop{Node: core.Node(n)})
		}
		return hs
	}
	links, err := core.SCFS([]*core.TracePath{
		{SrcSensor: 0, DstSensor: 1, OK: false,
			Hops: hops("s1", "r1", "r3", "r6", "r7", "r9", "r11", "s2")},
		{SrcSensor: 0, DstSensor: 2, OK: true,
			Hops: hops("s1", "r1", "r3", "r6", "r8", "r10", "s3")},
	})
	if err != nil {
		panic(err)
	}
	for _, l := range links {
		fmt.Println(l)
	}
	// Output:
	// r6->r7
}

// ExampleDiagnosability computes D(G) for a two-path graph: the two a->b
// observations give the shared link its own hitting set.
func ExampleDiagnosability() {
	hops := func(names ...string) []core.Hop {
		var hs []core.Hop
		for _, n := range names {
			hs = append(hs, core.Hop{Node: core.Node(n)})
		}
		return hs
	}
	paths := []*core.TracePath{
		{SrcSensor: 0, DstSensor: 1, OK: true, Hops: hops("a", "b", "c")},
		{SrcSensor: 0, DstSensor: 2, OK: true, Hops: hops("a", "b")},
	}
	fmt.Printf("%.1f\n", core.Diagnosability(paths))
	// Output:
	// 1.0
}
