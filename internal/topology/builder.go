package topology

import (
	"fmt"
	"sort"
)

// Builder constructs a Topology incrementally. It assigns IDs and addresses
// and enforces relationship symmetry. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	t      *Topology
	nextAS map[ASN]int // per-AS router counter for naming/addressing
	asSeq  map[ASN]int // sequential AS index used for valid IPv4 octets
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{
		t: &Topology{
			ases:   map[ASN]*AS{},
			rels:   map[asnPair]Rel{},
			byAddr: map[string]RouterID{},
		},
		nextAS: map[ASN]int{},
		asSeq:  map[ASN]int{},
	}
}

// AddAS declares an AS. It panics if the AS already exists.
func (b *Builder) AddAS(n ASN, kind ASKind, name string) {
	if _, ok := b.t.ases[n]; ok {
		panic(fmt.Sprintf("topology: AS%d declared twice", n))
	}
	if name == "" {
		name = fmt.Sprintf("AS%d", n)
	}
	b.asSeq[n] = len(b.asSeq)
	b.t.ases[n] = &AS{Num: n, Kind: kind, Name: name}
}

// AddRouter adds a router to an existing AS and returns its ID. The router
// gets a deterministic name ("AS7.r3") and address derived from the IDs.
func (b *Builder) AddRouter(as ASN, name string) RouterID {
	a, ok := b.t.ases[as]
	if !ok {
		panic(fmt.Sprintf("topology: AddRouter for undeclared AS%d", as))
	}
	idx := b.nextAS[as]
	b.nextAS[as] = idx + 1
	if name == "" {
		name = fmt.Sprintf("%s.r%d", a.Name, idx)
	}
	id := RouterID(len(b.t.routers))
	r := &Router{ID: id, AS: as, Name: name, Addr: addrFor(b.asSeq[as], idx)}
	b.t.routers = append(b.t.routers, r)
	a.Routers = append(a.Routers, id)
	b.t.byAddr[r.Addr] = id
	return id
}

// addrFor derives a unique IPv4-shaped address for router idx of the
// seq-th declared AS. Addresses are purely synthetic but stay within valid
// octet ranges so traceroute output reads naturally.
func addrFor(seq, idx int) string {
	return fmt.Sprintf("10.%d.%d.%d", (seq>>8)&255, seq&255, idx+1)
}

// Connect adds an intra-AS link with the given IGP cost between two routers
// of the same AS and returns its ID.
func (b *Builder) Connect(a, c RouterID, cost int) LinkID {
	if b.t.routers[a].AS != b.t.routers[c].AS {
		panic("topology: Connect requires routers in the same AS; use Interconnect")
	}
	return b.addLink(a, c, cost, Intra)
}

// Interconnect adds an inter-AS link between border routers a (in AS A) and
// c (in AS C) and records the relationship: rel is A's view of C (Customer
// means C is A's customer). The symmetric relationship is derived.
func (b *Builder) Interconnect(a, c RouterID, rel Rel) LinkID {
	asA, asC := b.t.routers[a].AS, b.t.routers[c].AS
	if asA == asC {
		panic("topology: Interconnect requires routers in different ASes; use Connect")
	}
	b.setRel(asA, asC, rel)
	return b.addLink(a, c, 1, Inter)
}

func (b *Builder) setRel(a, c ASN, rel Rel) {
	inv := Peer
	switch rel {
	case Customer:
		inv = Provider
	case Provider:
		inv = Customer
	case Peer:
		inv = Peer
	default:
		panic("topology: relationship must be Customer, Peer or Provider")
	}
	if prev, ok := b.t.rels[asnPair{a, c}]; ok && prev != rel {
		panic(fmt.Sprintf("topology: conflicting relationship AS%d->AS%d: %v then %v", a, c, prev, rel))
	}
	b.t.rels[asnPair{a, c}] = rel
	b.t.rels[asnPair{c, a}] = inv
}

func (b *Builder) addLink(a, c RouterID, cost int, kind LinkKind) LinkID {
	id := LinkID(len(b.t.links))
	l := &PhysLink{ID: id, A: a, B: c, Cost: cost, Kind: kind}
	b.t.links = append(b.t.links, l)
	b.t.routers[a].Links = append(b.t.routers[a].Links, id)
	b.t.routers[c].Links = append(b.t.routers[c].Links, id)
	return id
}

// Build finalizes and validates the topology.
func (b *Builder) Build() (*Topology, error) {
	t := b.t
	t.asList = t.asList[:0]
	for n := range t.ases {
		t.asList = append(t.asList, n)
	}
	sort.Slice(t.asList, func(i, j int) bool { return t.asList[i] < t.asList[j] })
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.intraByAS = make(map[ASN][]*PhysLink, len(t.asList))
	for _, l := range t.links {
		if l.Kind == Intra {
			as := t.RouterAS(l.A)
			t.intraByAS[as] = append(t.intraByAS[as], l)
		}
	}
	return t, nil
}

// MustBuild is Build, panicking on error. Intended for embedded topologies
// and tests where failure indicates a programming bug.
func (b *Builder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
