package topology

import (
	"fmt"
	"strings"
	"testing"
)

// The fuzz targets drive the Builder and the research-topology
// generator from arbitrary byte strings. The driver respects the
// Builder's documented preconditions (those panic by contract) and
// asserts what the package promises beyond them: construction never
// panics, Build either validates or returns an error, and the whole
// process is a pure function of the input bytes — same bytes, same
// topology, same error.

type opReader struct {
	data []byte
	i    int
}

func (r *opReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	v := r.data[r.i]
	r.i++
	return v
}

func invert(rel Rel) Rel {
	switch rel {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return Peer
	}
}

// buildFromOps replays a byte string as a builder op sequence and
// returns a rendering of the built topology (or Build's error).
func buildFromOps(data []byte) (string, error) {
	r := &opReader{data: data}
	b := NewBuilder()
	var ases []ASN
	declared := map[ASN]bool{}
	var routers []RouterID
	var routerAS []ASN
	rels := map[asnPair]Rel{}
	relPick := [...]Rel{Customer, Peer, Provider}

	steps := 2 + int(r.next()%48)
	for i := 0; i < steps; i++ {
		switch r.next() % 4 {
		case 0: // declare an AS (once; twice panics by contract)
			n := ASN(1 + r.next()%6)
			if !declared[n] {
				declared[n] = true
				ases = append(ases, n)
				b.AddAS(n, ASKind(r.next()%3), "")
			}
		case 1: // add a router to a declared AS
			if len(ases) > 0 {
				as := ases[int(r.next())%len(ases)]
				routers = append(routers, b.AddRouter(as, ""))
				routerAS = append(routerAS, as)
			}
		default: // link two routers, intra or inter as their ASes dictate
			if len(routers) < 2 {
				continue
			}
			x := int(r.next()) % len(routers)
			y := int(r.next()) % len(routers)
			if routerAS[x] == routerAS[y] {
				if x != y {
					b.Connect(routers[x], routers[y], 1+int(r.next()%5))
				}
				continue
			}
			// Reuse any previously recorded relationship for the AS pair:
			// a conflicting redeclaration panics by contract.
			key := asnPair{routerAS[x], routerAS[y]}
			rel := relPick[r.next()%3]
			if prev, ok := rels[key]; ok {
				rel = prev
			}
			b.Interconnect(routers[x], routers[y], rel)
			rels[key] = rel
			rels[asnPair{key.b, key.a}] = invert(rel)
		}
	}
	t, err := b.Build()
	if err != nil {
		return "", err
	}
	return summarize(t), nil
}

// summarize renders every observable fact of a topology in a fixed
// order, so two renderings are comparable byte-for-byte.
func summarize(t *Topology) string {
	var b strings.Builder
	for _, n := range t.ASNumbers() {
		as := t.AS(n)
		fmt.Fprintf(&b, "AS%d kind=%s routers=%d\n", n, as.Kind, len(as.Routers))
		for _, nb := range t.Neighbors(n) {
			fmt.Fprintf(&b, "  rel AS%d->AS%d %s\n", n, nb, t.Rel(n, nb))
		}
	}
	for i := 0; i < t.NumRouters(); i++ {
		rt := t.Router(RouterID(i))
		fmt.Fprintf(&b, "router %d as=%d name=%s addr=%s links=%d\n",
			rt.ID, rt.AS, rt.Name, rt.Addr, len(rt.Links))
	}
	for i := 0; i < t.NumLinks(); i++ {
		l := t.Link(LinkID(i))
		fmt.Fprintf(&b, "link %d %d-%d cost=%d kind=%s\n", l.ID, l.A, l.B, l.Cost, l.Kind)
	}
	return b.String()
}

func FuzzBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 0, 1, 0, 2, 1, 0, 1, 0, 1, 1, 2, 0, 1, 3, 1, 0})
	f.Add([]byte("0123456789abcdef0123456789abcdef"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err1 := buildFromOps(data)
		s2, err2 := buildFromOps(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error text: %q vs %q", err1, err2)
			}
			return
		}
		if s1 != s2 {
			t.Fatalf("nondeterministic topology:\n%s\nvs\n%s", s1, s2)
		}
	})
}

func FuzzGenerateResearch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 6, 4, 50, 25, 15, 1, 42, 1})
	f.Add([]byte("topology"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &opReader{data: data}
		cfg := ResearchConfig{
			NumTier2:            int(r.next() % 6), // 0 exercises the invalid-config path
			NumStubs:            int(r.next() % 16),
			Tier2Routers:        int(r.next() % 8), // <2 exercises the invalid-config path
			Tier2MultihomedFrac: float64(r.next()%101) / 100,
			StubMultihomedFrac:  float64(r.next()%101) / 100,
			StubsOnCoreFrac:     float64(r.next()%101) / 100,
			DualHubTier2:        r.next()%2 == 1,
			Seed:                int64(r.next()) | int64(r.next())<<8,
		}
		g1, err1 := GenerateResearch(cfg)
		g2, err2 := GenerateResearch(cfg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error text: %q vs %q", err1, err2)
			}
			return
		}
		if err := g1.Topo.Validate(); err != nil {
			t.Fatalf("generated topology fails validation: %v", err)
		}
		if s1, s2 := summarize(g1.Topo), summarize(g2.Topo); s1 != s2 {
			t.Fatalf("same seed, different topology:\n%s\nvs\n%s", s1, s2)
		}
		if fmt.Sprint(g1.Cores, g1.Tier2, g1.Stubs) != fmt.Sprint(g2.Cores, g2.Tier2, g2.Stubs) {
			t.Fatalf("same seed, different AS roles")
		}
	})
}
