package topology

import (
	"strings"
	"testing"
)

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); ok && !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	fn()
}

func TestBuilderMisusePanics(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, Stub, "")
	expectPanic(t, "declared twice", func() { b.AddAS(1, Stub, "") })
	expectPanic(t, "undeclared", func() { b.AddRouter(99, "") })

	b.AddAS(2, Stub, "")
	r1 := b.AddRouter(1, "")
	r2 := b.AddRouter(2, "")
	expectPanic(t, "same AS", func() { b.Connect(r1, r2, 1) })

	r1b := b.AddRouter(1, "")
	expectPanic(t, "different ASes", func() { b.Interconnect(r1, r1b, Customer) })
	expectPanic(t, "relationship must be", func() { b.Interconnect(r1, r2, None) })

	// Conflicting relationship between the same AS pair.
	b2 := NewBuilder()
	b2.AddAS(1, Stub, "")
	b2.AddAS(2, Stub, "")
	a := b2.AddRouter(1, "")
	c := b2.AddRouter(2, "")
	b2.Interconnect(a, c, Customer)
	d := b2.AddRouter(1, "")
	e := b2.AddRouter(2, "")
	expectPanic(t, "conflicting relationship", func() { b2.Interconnect(d, e, Peer) })
}

func TestValidateCatchesDisconnectedAS(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, Tier2, "")
	b.AddRouter(1, "")
	b.AddRouter(1, "") // two routers, no intra link
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Fatalf("Build should reject a disconnected AS, got %v", err)
	}
}

func TestValidateCatchesNonPositiveCost(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, Tier2, "")
	r1 := b.AddRouter(1, "")
	r2 := b.AddRouter(1, "")
	b.Connect(r1, r2, 0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cost") {
		t.Fatalf("Build should reject zero cost, got %v", err)
	}
}

func TestStringers(t *testing.T) {
	if Core.String() != "core" || Tier2.String() != "tier2" || Stub.String() != "stub" {
		t.Fatal("ASKind strings")
	}
	if Intra.String() != "intra" || Inter.String() != "inter" {
		t.Fatal("LinkKind strings")
	}
	for rel, want := range map[Rel]string{
		Customer: "customer", Peer: "peer", Provider: "provider", None: "none",
	} {
		if rel.String() != want {
			t.Fatalf("Rel(%d).String() = %q", rel, rel.String())
		}
	}
	if got := ASKind(42).String(); !strings.Contains(got, "42") {
		t.Fatalf("unknown kind should embed the value, got %q", got)
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, Tier2, "")
	b.AddRouter(1, "")
	b.AddRouter(1, "")
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on invalid topology")
		}
	}()
	b.MustBuild()
}

func TestGenerateResearchRejectsBadConfig(t *testing.T) {
	cfg := DefaultResearchConfig(1)
	cfg.Tier2Routers = 1
	if _, err := GenerateResearch(cfg); err == nil {
		t.Fatal("Tier2Routers < 2 must be rejected")
	}
	cfg = DefaultResearchConfig(1)
	cfg.NumTier2 = 0
	if _, err := GenerateResearch(cfg); err == nil {
		t.Fatal("zero tier-2 count must be rejected")
	}
}

func TestDualHubVariant(t *testing.T) {
	cfg := DefaultResearchConfig(33)
	cfg.DualHubTier2 = true
	res, err := GenerateResearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every tier-2 AS must have spokes wired to both hubs.
	for _, n := range res.Tier2 {
		routers := res.Topo.AS(n).Routers
		hub0, hub1 := routers[0], routers[1]
		if _, ok := res.Topo.LinkBetween(hub0, hub1); !ok {
			t.Fatalf("AS%d hubs not connected", n)
		}
		for _, spoke := range routers[2:] {
			if _, ok := res.Topo.LinkBetween(hub0, spoke); !ok {
				t.Fatalf("AS%d spoke %d missing hub0 link", n, spoke)
			}
			if _, ok := res.Topo.LinkBetween(hub1, spoke); !ok {
				t.Fatalf("AS%d spoke %d missing hub1 link", n, spoke)
			}
		}
	}
}
