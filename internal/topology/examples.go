package topology

// This file builds the paper's two illustrative topologies (Figures 1 and 2)
// for use in tests, examples and documentation.

// Fig1 is the single-AS tree topology of the paper's Figure 1: sensors s1,
// s2, s3 connected through routers r1..r11. The failure of r9-r11 breaks
// s1->s2 while s1->s3 keeps working, and Boolean tomography on the tree can
// only narrow the failure to the chain r6-r7, r7-r9, r9-r11, r11-s2.
type Fig1 struct {
	Topo       *Topology
	S1, S2, S3 RouterID
	R          map[string]RouterID // "r1".."r11"
}

// BuildFig1 constructs the Figure 1 topology. Sensors are modeled as
// routers of the same (single) AS.
func BuildFig1() *Fig1 {
	b := NewBuilder()
	b.AddAS(1, Core, "AS1")
	r := map[string]RouterID{}
	for _, name := range []string{"r1", "r3", "r6", "r7", "r8", "r9", "r10", "r11"} {
		r[name] = b.AddRouter(1, name)
	}
	s1 := b.AddRouter(1, "s1")
	s2 := b.AddRouter(1, "s2")
	s3 := b.AddRouter(1, "s3")
	// Shared trunk s1-r1-r3-r6, then branch r6-r7-r9-r11-s2 and
	// branch r6-r8-r10-s3.
	b.Connect(s1, r["r1"], 1)
	b.Connect(r["r1"], r["r3"], 1)
	b.Connect(r["r3"], r["r6"], 1)
	b.Connect(r["r6"], r["r7"], 1)
	b.Connect(r["r7"], r["r9"], 1)
	b.Connect(r["r9"], r["r11"], 1)
	b.Connect(r["r11"], s2, 1)
	b.Connect(r["r6"], r["r8"], 1)
	b.Connect(r["r8"], r["r10"], 1)
	b.Connect(r["r10"], s3, 1)
	return &Fig1{Topo: b.MustBuild(), S1: s1, S2: s2, S3: s3, R: r}
}

// Fig2 is the paper's Figure 2 multi-AS example: stub ASes A, B, C hosting
// sensors s1, s2, s3; transit ASes X (the troubleshooter) and Y. The
// forward path s1->s2 is s1,a1,a2,x1,x2,y1,y4,b1,b2,s2 and s1->s3 is
// s1,a1,a2,x1,x2,y1,y2,y3,c1,c2,s3, matching the hypothesis sets quoted in
// the paper's §3.3 example.
type Fig2 struct {
	Topo       *Topology
	ASA        ASN
	ASB        ASN
	ASC        ASN
	ASX        ASN
	ASY        ASN
	S1, S2, S3 RouterID
	R          map[string]RouterID // a1,a2,x1,x2,y1..y4,b1,b2,c1,c2
}

// BuildFig2 constructs the Figure 2 topology with Gao–Rexford
// relationships: A is X's customer; X and Y peer; B and C are Y's customers.
func BuildFig2() *Fig2 {
	b := NewBuilder()
	const (
		aA ASN = 65001
		aB ASN = 65002
		aC ASN = 65003
		aX ASN = 65010
		aY ASN = 65020
	)
	b.AddAS(aA, Stub, "AS-A")
	b.AddAS(aB, Stub, "AS-B")
	b.AddAS(aC, Stub, "AS-C")
	b.AddAS(aX, Tier2, "AS-X")
	b.AddAS(aY, Tier2, "AS-Y")

	r := map[string]RouterID{}
	add := func(as ASN, names ...string) {
		for _, n := range names {
			r[n] = b.AddRouter(as, n)
		}
	}
	add(aA, "s1", "a1", "a2")
	add(aB, "b1", "b2", "s2")
	add(aC, "c1", "c2", "s3")
	add(aX, "x1", "x2")
	add(aY, "y1", "y2", "y3", "y4")

	// Intra-AS links.
	b.Connect(r["s1"], r["a1"], 1)
	b.Connect(r["a1"], r["a2"], 1)
	b.Connect(r["b1"], r["b2"], 1)
	b.Connect(r["b2"], r["s2"], 1)
	b.Connect(r["c1"], r["c2"], 1)
	b.Connect(r["c2"], r["s3"], 1)
	b.Connect(r["x1"], r["x2"], 1)
	b.Connect(r["y1"], r["y2"], 1)
	b.Connect(r["y2"], r["y3"], 1)
	b.Connect(r["y1"], r["y4"], 1)
	b.Connect(r["y3"], r["y4"], 2) // y4->y3 goes direct; y1->y3 still prefers y2

	// Inter-AS links. Interconnect(a, c, rel): rel is a's view of c.
	b.Interconnect(r["x1"], r["a2"], Customer) // A is X's customer
	b.Interconnect(r["x2"], r["y1"], Peer)     // X-Y peering
	b.Interconnect(r["y4"], r["b1"], Customer) // B is Y's customer
	b.Interconnect(r["y3"], r["c1"], Customer) // C is Y's customer

	return &Fig2{
		Topo: b.MustBuild(),
		ASA:  aA, ASB: aB, ASC: aC, ASX: aX, ASY: aY,
		S1: r["s1"], S2: r["s2"], S3: r["s3"], R: r,
	}
}
