// Package topology models multi-AS router-level network topologies: ASes,
// routers, physical links, business relationships, and addressing. It is the
// substrate every other package builds on: the IGP and BGP simulators route
// over it, the probe package traces through it, and the experiment harness
// generates instances of it that match the evaluation setup of the
// NetDiagnoser paper (CoNEXT 2007).
package topology

import (
	"fmt"
	"sort"
)

// ASN identifies an autonomous system.
type ASN int

// RouterID identifies a router globally (across all ASes).
type RouterID int

// LinkID identifies a physical (undirected) link globally.
type LinkID int

// ASKind classifies an AS by its role in the hierarchy used by the paper's
// evaluation topology: three core ASes, 22 tier-2 ASes, 140 stub ASes.
type ASKind int

const (
	// Core is a backbone AS (Abilene, GEANT, WIDE in the paper).
	Core ASKind = iota
	// Tier2 is a mid-hierarchy transit AS.
	Tier2
	// Stub is an edge AS with a single router.
	Stub
)

// String returns a human-readable AS kind.
func (k ASKind) String() string {
	switch k {
	case Core:
		return "core"
	case Tier2:
		return "tier2"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("ASKind(%d)", int(k))
	}
}

// LinkKind distinguishes links inside one AS from links between ASes.
type LinkKind int

const (
	// Intra links connect two routers of the same AS.
	Intra LinkKind = iota
	// Inter links connect border routers of two different ASes.
	Inter
)

// String returns a human-readable link kind.
func (k LinkKind) String() string {
	if k == Intra {
		return "intra"
	}
	return "inter"
}

// Rel is the business relationship of one AS towards a neighbor, following
// the Gao–Rexford model the BGP substrate implements.
type Rel int

const (
	// None means the two ASes have no relationship (no link between them).
	None Rel = iota
	// Customer means the neighbor is a customer of this AS.
	Customer
	// Peer means the neighbor is a settlement-free peer.
	Peer
	// Provider means the neighbor is a provider of this AS.
	Provider
)

// String returns a human-readable relationship name.
func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	default:
		return "none"
	}
}

// AS is one autonomous system and the routers it contains.
type AS struct {
	Num     ASN
	Kind    ASKind
	Name    string
	Routers []RouterID
}

// Router is a single router. Addr is its unique IP-like address, which is
// what simulated traceroutes report; the paper notes the troubleshooter
// never needs alias resolution, so one address per router is sufficient
// information (see DESIGN.md substitutions).
type Router struct {
	ID    RouterID
	AS    ASN
	Name  string
	Addr  string
	Links []LinkID // incident physical links
}

// PhysLink is an undirected physical link between two routers. Cost is the
// IGP metric used for intra-AS shortest paths (ignored on inter-AS links).
type PhysLink struct {
	ID   LinkID
	A, B RouterID
	Cost int
	Kind LinkKind
}

// Other returns the endpoint of l that is not r.
// It panics if r is not an endpoint of l.
func (l *PhysLink) Other(r RouterID) RouterID {
	switch r {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topology: router %d not an endpoint of link %d", r, l.ID))
}

// Has reports whether r is an endpoint of l.
func (l *PhysLink) Has(r RouterID) bool { return l.A == r || l.B == r }

type asnPair struct{ a, b ASN }

// Topology is an immutable multi-AS router-level topology. Build one with a
// Builder or one of the generators in this package.
type Topology struct {
	ases    map[ASN]*AS
	asList  []ASN // sorted
	routers []*Router
	links   []*PhysLink
	rels    map[asnPair]Rel
	byAddr  map[string]RouterID
	// intraByAS indexes links by owning AS, filled once in Build; the IGP
	// reads it on every reconvergence so it must not be a per-call scan.
	intraByAS map[ASN][]*PhysLink
}

// AS returns the AS with the given number, or nil if absent.
func (t *Topology) AS(n ASN) *AS { return t.ases[n] }

// ASNumbers returns all AS numbers in ascending order.
// The returned slice is shared; callers must not modify it.
func (t *Topology) ASNumbers() []ASN { return t.asList }

// NumRouters returns the number of routers.
func (t *Topology) NumRouters() int { return len(t.routers) }

// Router returns the router with the given ID.
func (t *Topology) Router(id RouterID) *Router { return t.routers[id] }

// RouterByAddr returns the router owning the given address.
func (t *Topology) RouterByAddr(addr string) (*Router, bool) {
	id, ok := t.byAddr[addr]
	if !ok {
		return nil, false
	}
	return t.routers[id], true
}

// NumLinks returns the number of physical links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Link returns the physical link with the given ID.
func (t *Topology) Link(id LinkID) *PhysLink { return t.links[id] }

// Links returns all physical links. The returned slice is shared; callers
// must not modify it.
func (t *Topology) Links() []*PhysLink { return t.links }

// RouterAS returns the AS number of a router.
func (t *Topology) RouterAS(id RouterID) ASN { return t.routers[id].AS }

// Rel returns the relationship of AS a towards AS b
// (Customer means b is a's customer).
func (t *Topology) Rel(a, b ASN) Rel { return t.rels[asnPair{a, b}] }

// Neighbors returns the AS numbers adjacent to a, in ascending order.
func (t *Topology) Neighbors(a ASN) []ASN {
	seen := map[ASN]bool{}
	var out []ASN
	for _, rid := range t.ases[a].Routers {
		for _, lid := range t.routers[rid].Links {
			l := t.links[lid]
			if l.Kind != Inter {
				continue
			}
			other := t.RouterAS(l.Other(rid))
			if other != a && !seen[other] {
				seen[other] = true
				out = append(out, other)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkBetween returns a physical link connecting routers a and b, if any.
func (t *Topology) LinkBetween(a, b RouterID) (*PhysLink, bool) {
	for _, lid := range t.routers[a].Links {
		l := t.links[lid]
		if l.Has(b) {
			return l, true
		}
	}
	return nil, false
}

// ASesOfKind returns the AS numbers of the given kind, in ascending order.
func (t *Topology) ASesOfKind(k ASKind) []ASN {
	var out []ASN
	for _, n := range t.asList {
		if t.ases[n].Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// IntraLinks returns the intra-AS links of the given AS. The returned
// slice is shared; callers must not modify it.
func (t *Topology) IntraLinks(n ASN) []*PhysLink {
	if t.intraByAS != nil {
		return t.intraByAS[n]
	}
	var out []*PhysLink
	for _, l := range t.links {
		if l.Kind == Intra && t.RouterAS(l.A) == n {
			out = append(out, l)
		}
	}
	return out
}

// Validate checks internal consistency: every link endpoint exists, link
// kinds match endpoint ASes, relationships are symmetric and present for
// every inter-AS adjacency, and every intra-AS subgraph is connected.
func (t *Topology) Validate() error {
	for _, l := range t.links {
		if int(l.A) >= len(t.routers) || int(l.B) >= len(t.routers) {
			return fmt.Errorf("link %d has unknown endpoint", l.ID)
		}
		sameAS := t.RouterAS(l.A) == t.RouterAS(l.B)
		if sameAS != (l.Kind == Intra) {
			return fmt.Errorf("link %d kind %v inconsistent with endpoint ASes", l.ID, l.Kind)
		}
		if l.Kind == Inter {
			a, b := t.RouterAS(l.A), t.RouterAS(l.B)
			ra, rb := t.Rel(a, b), t.Rel(b, a)
			if ra == None || rb == None {
				return fmt.Errorf("inter-AS link %d between AS%d and AS%d has no relationship", l.ID, a, b)
			}
			if (ra == Customer) != (rb == Provider) || (ra == Peer) != (rb == Peer) {
				return fmt.Errorf("asymmetric relationship between AS%d (%v) and AS%d (%v)", a, ra, b, rb)
			}
		}
		if l.Cost <= 0 {
			return fmt.Errorf("link %d has non-positive cost %d", l.ID, l.Cost)
		}
	}
	// Walk the sorted AS list, not the map: with several invalid ASes the
	// reported error must not depend on map iteration order.
	for _, n := range t.asList {
		as := t.ases[n]
		if len(as.Routers) == 0 {
			return fmt.Errorf("AS%d has no routers", as.Num)
		}
		if !t.intraConnected(as) {
			return fmt.Errorf("AS%d intra-AS graph is not connected", as.Num)
		}
	}
	return nil
}

func (t *Topology) intraConnected(as *AS) bool {
	if len(as.Routers) == 1 {
		return true
	}
	seen := map[RouterID]bool{as.Routers[0]: true}
	stack := []RouterID{as.Routers[0]}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range t.routers[r].Links {
			l := t.links[lid]
			if l.Kind != Intra {
				continue
			}
			o := l.Other(r)
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return len(seen) == len(as.Routers)
}
