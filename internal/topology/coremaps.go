package topology

// This file embeds stylized router-level maps of the three core research
// networks the paper uses (Abilene, GEANT, WIDE). The paper took the exact
// maps from IS-IS traces and published topology pages; we embed close
// approximations with the published PoP counts and mesh structure — the
// diagnosis algorithms only see the traceroute-inferred subgraph, so the
// precise internal wiring only shapes path diversity (see DESIGN.md).

// coreMap describes one embedded core network: node names and an edge list
// (by node index) with IGP costs.
type coreMap struct {
	name  string
	nodes []string
	edges []coreEdge
}

type coreEdge struct {
	a, b int
	cost int
}

// abileneMap is the 11-PoP Abilene (Internet2) backbone, circa 2007.
var abileneMap = coreMap{
	name: "Abilene",
	nodes: []string{
		"SEA", "SNV", "LA", "DEN", "KC", "HOU",
		"IND", "ATL", "CHI", "WAS", "NY",
	},
	edges: []coreEdge{
		{0, 1, 10}, // SEA-SNV
		{0, 3, 20}, // SEA-DEN
		{1, 2, 5},  // SNV-LA
		{1, 3, 15}, // SNV-DEN
		{2, 5, 25}, // LA-HOU
		{3, 4, 10}, // DEN-KC
		{4, 5, 12}, // KC-HOU
		{4, 6, 10}, // KC-IND
		{5, 7, 18}, // HOU-ATL
		{6, 7, 8},  // IND-ATL
		{6, 8, 5},  // IND-CHI
		{7, 9, 10}, // ATL-WAS
		{8, 10, 8}, // CHI-NY
		{9, 10, 4}, // WAS-NY
	},
}

// geantMap is a 22-PoP stylization of the GEANT pan-European backbone:
// a well-connected western core with eastern and peripheral spurs.
var geantMap = coreMap{
	name: "GEANT",
	nodes: []string{
		"UK", "FR", "DE", "NL", "BE", "CH", "IT", "ES", "AT", "CZ", "PL",
		"HU", "SK", "SI", "HR", "GR", "PT", "IE", "SE", "DK", "RO", "BG",
	},
	edges: []coreEdge{
		{0, 1, 5},   // UK-FR
		{0, 3, 4},   // UK-NL
		{0, 17, 6},  // UK-IE
		{0, 18, 12}, // UK-SE
		{1, 2, 6},   // FR-DE
		{1, 5, 5},   // FR-CH
		{1, 7, 8},   // FR-ES
		{1, 4, 3},   // FR-BE
		{2, 3, 4},   // DE-NL
		{2, 5, 5},   // DE-CH
		{2, 8, 5},   // DE-AT
		{2, 9, 4},   // DE-CZ
		{2, 10, 6},  // DE-PL
		{2, 19, 5},  // DE-DK
		{3, 4, 2},   // NL-BE
		{5, 6, 6},   // CH-IT
		{6, 8, 5},   // IT-AT
		{6, 15, 10}, // IT-GR
		{7, 16, 4},  // ES-PT
		{8, 11, 4},  // AT-HU
		{8, 13, 3},  // AT-SI
		{9, 12, 3},  // CZ-SK
		{10, 12, 4}, // PL-SK
		{11, 14, 4}, // HU-HR
		{11, 20, 6}, // HU-RO
		{13, 14, 2}, // SI-HR
		{15, 21, 5}, // GR-BG
		{18, 19, 4}, // SE-DK
		{20, 21, 4}, // RO-BG
	},
}

// wideMap is a 14-node stylization of the WIDE (Japan) backbone: Tokyo-area
// core with regional spurs and a trans-Pacific arc.
var wideMap = coreMap{
	name: "WIDE",
	nodes: []string{
		"Tokyo1", "Tokyo2", "Osaka", "Kyoto", "Nara", "Fukuoka",
		"Sendai", "Sapporo", "Nagoya", "Hiroshima", "Okinawa",
		"Yokohama", "Komatsu", "LA-US",
	},
	edges: []coreEdge{
		{0, 1, 1},    // Tokyo1-Tokyo2
		{0, 11, 2},   // Tokyo1-Yokohama
		{0, 6, 8},    // Tokyo1-Sendai
		{0, 8, 6},    // Tokyo1-Nagoya
		{1, 2, 10},   // Tokyo2-Osaka
		{1, 13, 50},  // Tokyo2-LA (trans-Pacific)
		{2, 3, 2},    // Osaka-Kyoto
		{2, 9, 6},    // Osaka-Hiroshima
		{2, 8, 4},    // Osaka-Nagoya
		{3, 4, 1},    // Kyoto-Nara
		{5, 9, 5},    // Fukuoka-Hiroshima
		{5, 10, 12},  // Fukuoka-Okinawa
		{6, 7, 8},    // Sendai-Sapporo
		{8, 12, 5},   // Nagoya-Komatsu
		{11, 13, 50}, // Yokohama-LA (second trans-Pacific)
	},
}

// buildCoreAS adds a core AS from a map to the builder and returns the
// router IDs in node order.
func buildCoreAS(b *Builder, n ASN, m coreMap) []RouterID {
	b.AddAS(n, Core, m.name)
	ids := make([]RouterID, len(m.nodes))
	for i, name := range m.nodes {
		ids[i] = b.AddRouter(n, m.name+"."+name)
	}
	for _, e := range m.edges {
		b.Connect(ids[e.a], ids[e.b], e.cost)
	}
	return ids
}
