package topology

import (
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, Core, "one")
	b.AddAS(2, Stub, "two")
	r1 := b.AddRouter(1, "")
	r2 := b.AddRouter(1, "")
	r3 := b.AddRouter(2, "")
	l1 := b.Connect(r1, r2, 3)
	l2 := b.Interconnect(r2, r3, Customer)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if topo.NumRouters() != 3 || topo.NumLinks() != 2 {
		t.Fatalf("got %d routers %d links", topo.NumRouters(), topo.NumLinks())
	}
	if topo.Link(l1).Kind != Intra || topo.Link(l2).Kind != Inter {
		t.Fatal("link kinds wrong")
	}
	if topo.Rel(1, 2) != Customer || topo.Rel(2, 1) != Provider {
		t.Fatalf("relationship wrong: %v %v", topo.Rel(1, 2), topo.Rel(2, 1))
	}
	if topo.Rel(1, 99) != None {
		t.Fatal("unrelated ASes should have Rel None")
	}
	if got := topo.Neighbors(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if _, ok := topo.LinkBetween(r1, r2); !ok {
		t.Fatal("LinkBetween(r1,r2) missing")
	}
	if _, ok := topo.LinkBetween(r1, r3); ok {
		t.Fatal("LinkBetween(r1,r3) should be absent")
	}
}

func TestRouterAddressesUnique(t *testing.T) {
	res, err := GenerateResearch(DefaultResearchConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]RouterID{}
	for i := 0; i < res.Topo.NumRouters(); i++ {
		r := res.Topo.Router(RouterID(i))
		if prev, dup := seen[r.Addr]; dup {
			t.Fatalf("address %s assigned to routers %d and %d", r.Addr, prev, r.ID)
		}
		seen[r.Addr] = r.ID
		if got, ok := res.Topo.RouterByAddr(r.Addr); !ok || got.ID != r.ID {
			t.Fatalf("RouterByAddr(%s) = %v, %v", r.Addr, got, ok)
		}
	}
}

func TestGenerateResearchShape(t *testing.T) {
	cfg := DefaultResearchConfig(42)
	res, err := GenerateResearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo := res.Topo
	if got := len(topo.ASNumbers()); got != 165 {
		t.Fatalf("want 165 ASes, got %d", got)
	}
	if len(res.Cores) != 3 || len(res.Tier2) != 22 || len(res.Stubs) != 140 {
		t.Fatalf("role counts: %d cores %d tier2 %d stubs", len(res.Cores), len(res.Tier2), len(res.Stubs))
	}
	for _, n := range res.Tier2 {
		if got := len(topo.AS(n).Routers); got != cfg.Tier2Routers {
			t.Fatalf("tier2 AS%d has %d routers, want %d", n, got, cfg.Tier2Routers)
		}
	}
	for _, n := range res.Stubs {
		if got := len(topo.AS(n).Routers); got != 1 {
			t.Fatalf("stub AS%d has %d routers, want 1", n, got)
		}
		if nbrs := topo.Neighbors(n); len(nbrs) < 1 || len(nbrs) > 2 {
			t.Fatalf("stub AS%d has %d providers", n, len(nbrs))
		}
	}
	// Cores peer in full mesh.
	for _, a := range res.Cores {
		for _, b := range res.Cores {
			if a != b && topo.Rel(a, b) != Peer {
				t.Fatalf("cores AS%d-AS%d not peering", a, b)
			}
		}
	}
	// Multihoming fractions should be in the right ballpark.
	multi := 0
	for _, n := range res.Stubs {
		if len(topo.Neighbors(n)) == 2 {
			multi++
		}
	}
	if frac := float64(multi) / float64(len(res.Stubs)); frac < 0.10 || frac > 0.40 {
		t.Fatalf("stub multihoming fraction %.2f outside plausible band around 0.25", frac)
	}
}

func TestGenerateResearchDeterministic(t *testing.T) {
	a, err := GenerateResearch(DefaultResearchConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateResearch(DefaultResearchConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Topo.NumLinks() != b.Topo.NumLinks() {
		t.Fatalf("same seed, different link counts: %d vs %d", a.Topo.NumLinks(), b.Topo.NumLinks())
	}
	for i := 0; i < a.Topo.NumLinks(); i++ {
		la, lb := a.Topo.Link(LinkID(i)), b.Topo.Link(LinkID(i))
		if la.A != lb.A || la.B != lb.B || la.Cost != lb.Cost {
			t.Fatalf("link %d differs between identical seeds", i)
		}
	}
}

func TestGenerateResearchSeedsValid(t *testing.T) {
	// Every seed must yield a valid (relationship-consistent, connected
	// per AS) topology; Validate runs inside Build.
	f := func(seed int64) bool {
		res, err := GenerateResearch(DefaultResearchConfig(seed))
		return err == nil && res.Topo.NumRouters() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFig1Shape(t *testing.T) {
	f := BuildFig1()
	if err := f.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Topo.NumRouters() != 11 {
		t.Fatalf("Fig1 routers = %d", f.Topo.NumRouters())
	}
	if f.Topo.NumLinks() != 10 {
		t.Fatalf("Fig1 links = %d (tree over 11 nodes must have 10)", f.Topo.NumLinks())
	}
}

func TestFig2Shape(t *testing.T) {
	f := BuildFig2()
	if err := f.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.Topo.Rel(f.ASX, f.ASY); got != Peer {
		t.Fatalf("X-Y relationship = %v, want peer", got)
	}
	if got := f.Topo.Rel(f.ASY, f.ASB); got != Customer {
		t.Fatalf("Y->B relationship = %v, want customer", got)
	}
	if got := f.Topo.Rel(f.ASA, f.ASX); got != Provider {
		t.Fatalf("A->X relationship = %v, want provider", got)
	}
}

func TestPhysLinkOtherPanics(t *testing.T) {
	f := BuildFig1()
	l := f.Topo.Link(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	var bogus RouterID = 10000
	l.Other(bogus)
}

func TestIntraLinksAndKinds(t *testing.T) {
	f := BuildFig2()
	intra := f.Topo.IntraLinks(f.ASY)
	if len(intra) != 4 {
		t.Fatalf("AS-Y intra links = %d, want 4", len(intra))
	}
	for _, l := range intra {
		if l.Kind != Intra {
			t.Fatalf("IntraLinks returned inter link %d", l.ID)
		}
	}
}
