package topology

import (
	"fmt"
	"math/rand"
)

// ResearchConfig parameterizes the paper's evaluation topology ("research
// part of the Internet", §4): three core ASes in full mesh, tier-2 ASes with
// hub-and-spoke internals, and single-router stub ASes.
type ResearchConfig struct {
	// NumTier2 is the number of tier-2 ASes (paper: 22).
	NumTier2 int
	// NumStubs is the number of stub ASes (paper: 140).
	NumStubs int
	// Tier2Routers is the router count per tier-2 AS (paper: 12,
	// hub-and-spoke).
	Tier2Routers int
	// Tier2MultihomedFrac is the fraction of tier-2 ASes homed to two
	// cores (paper: 0.5).
	Tier2MultihomedFrac float64
	// StubMultihomedFrac is the fraction of stubs homed to two providers
	// (paper: 0.25).
	StubMultihomedFrac float64
	// StubsOnCoreFrac is the fraction of stubs whose (first) provider is a
	// core AS rather than a tier-2; the paper's BFS from the cores keeps
	// some stubs directly below the cores.
	StubsOnCoreFrac float64
	// DualHubTier2 gives each tier-2 AS two hubs with every spoke homed to
	// both at equal cost — a common PoP design that introduces equal-cost
	// multipath, used by the Paris-traceroute study. The paper's topology
	// (the default) uses a single hub.
	DualHubTier2 bool
	// Seed drives all random choices (interconnection points, homing).
	Seed int64
}

// DefaultResearchConfig returns the paper's published topology parameters.
func DefaultResearchConfig(seed int64) ResearchConfig {
	return ResearchConfig{
		NumTier2:            22,
		NumStubs:            140,
		Tier2Routers:        12,
		Tier2MultihomedFrac: 0.5,
		StubMultihomedFrac:  0.25,
		StubsOnCoreFrac:     0.15,
		Seed:                seed,
	}
}

// Research holds a generated research-Internet topology along with the role
// of each AS, so experiments can place sensors and pick AS-X by role.
type Research struct {
	Topo  *Topology
	Cores []ASN
	Tier2 []ASN
	Stubs []ASN
}

// Core AS numbers follow the real networks for readability.
const (
	asAbilene ASN = 11537
	asGEANT   ASN = 20965
	asWIDE    ASN = 2500
)

// GenerateResearch builds the multi-AS evaluation topology of the paper:
// Abilene, GEANT and WIDE as cores in full mesh (peering), cfg.NumTier2
// tier-2 customer ASes with 12-router hub-and-spoke internals, and
// cfg.NumStubs single-router stubs. Interconnection points are chosen
// uniformly at random from the provider's routers, as in the paper.
func GenerateResearch(cfg ResearchConfig) (*Research, error) {
	if cfg.NumTier2 <= 0 || cfg.NumStubs < 0 || cfg.Tier2Routers < 2 {
		return nil, fmt.Errorf("topology: invalid research config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	cores := []ASN{asAbilene, asGEANT, asWIDE}
	coreRouters := map[ASN][]RouterID{
		asAbilene: buildCoreAS(b, asAbilene, abileneMap),
		asGEANT:   buildCoreAS(b, asGEANT, geantMap),
		asWIDE:    buildCoreAS(b, asWIDE, wideMap),
	}
	// Full-mesh peering between the cores. The real interconnection points
	// are known (paper §4); we use the major exchange PoPs: Abilene
	// NY/LA, GEANT UK/NL, WIDE Tokyo/LA-US.
	b.Interconnect(coreRouters[asAbilene][10], coreRouters[asGEANT][0], Peer) // NY-UK
	b.Interconnect(coreRouters[asAbilene][2], coreRouters[asWIDE][13], Peer)  // LA-LA
	b.Interconnect(coreRouters[asGEANT][3], coreRouters[asWIDE][13], Peer)    // NL-LA

	res := &Research{Cores: cores}

	// Tier-2 ASes: hub-and-spoke internals, customers of one or two cores.
	tier2Borders := map[ASN][]RouterID{}
	for i := 0; i < cfg.NumTier2; i++ {
		n := ASN(100 + i)
		b.AddAS(n, Tier2, fmt.Sprintf("T2-%d", i))
		var routers []RouterID
		if cfg.DualHubTier2 {
			routers = buildDualHubSpoke(b, n, cfg.Tier2Routers)
		} else {
			routers = buildHubSpoke(b, n, cfg.Tier2Routers)
		}
		res.Tier2 = append(res.Tier2, n)
		tier2Borders[n] = routers

		homes := 1
		if rng.Float64() < cfg.Tier2MultihomedFrac {
			homes = 2
		}
		perm := rng.Perm(len(cores))
		for h := 0; h < homes; h++ {
			core := cores[perm[h]]
			cp := coreRouters[core][rng.Intn(len(coreRouters[core]))]
			// Tier-2 side: spokes host the border sessions (the hub is
			// index 0), mirroring typical hub-and-spoke designs.
			border := routers[1+rng.Intn(len(routers)-1)]
			b.Interconnect(cp, border, Customer)
		}
	}

	// Stub ASes: single router, customers of tier-2s (mostly) or cores.
	for i := 0; i < cfg.NumStubs; i++ {
		n := ASN(1000 + i)
		b.AddAS(n, Stub, fmt.Sprintf("S%d", i))
		r := b.AddRouter(n, "")
		res.Stubs = append(res.Stubs, n)

		homes := 1
		if rng.Float64() < cfg.StubMultihomedFrac {
			homes = 2
		}
		used := map[ASN]bool{}
		for h := 0; h < homes; h++ {
			var provider ASN
			if rng.Float64() < cfg.StubsOnCoreFrac {
				provider = cores[rng.Intn(len(cores))]
			} else {
				provider = res.Tier2[rng.Intn(len(res.Tier2))]
			}
			if used[provider] {
				continue // rare collision: stay single-homed rather than loop
			}
			used[provider] = true
			var pr RouterID
			if providerRouters, ok := tier2Borders[provider]; ok {
				pr = providerRouters[rng.Intn(len(providerRouters))]
			} else {
				pr = coreRouters[provider][rng.Intn(len(coreRouters[provider]))]
			}
			b.Interconnect(pr, r, Customer)
		}
	}

	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Topo = t
	return res, nil
}

// buildHubSpoke adds an AS with one hub router (index 0) and n-1 spokes,
// each spoke connected to the hub. This matches the paper's description of
// tier-2 intradomain topologies.
func buildHubSpoke(b *Builder, as ASN, n int) []RouterID {
	routers := make([]RouterID, n)
	for i := range routers {
		routers[i] = b.AddRouter(as, "")
	}
	for i := 1; i < n; i++ {
		b.Connect(routers[0], routers[i], 5)
	}
	return routers
}

// buildDualHubSpoke adds an AS with two hubs (indexes 0 and 1) and n-2
// spokes homed to both hubs at equal cost, creating equal-cost multipath
// between any two spokes.
func buildDualHubSpoke(b *Builder, as ASN, n int) []RouterID {
	routers := make([]RouterID, n)
	for i := range routers {
		routers[i] = b.AddRouter(as, "")
	}
	b.Connect(routers[0], routers[1], 2)
	for i := 2; i < n; i++ {
		b.Connect(routers[0], routers[i], 5)
		b.Connect(routers[1], routers[i], 5)
	}
	return routers
}
