package scenario

import (
	"bytes"
	"strings"
	"testing"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

const sampleJSON = `{
  "sensors": 2,
  "looking_glasses": {
    "100": {"1": [100, 150, 200]}
  },
  "before": [
    {"src":0,"dst":1,"ok":true,"hops":[
      {"addr":"10.0.0.1","as":100},
      {"addr":"*"},
      {"addr":"10.0.1.1","as":200}
    ]}
  ],
  "after": [
    {"src":0,"dst":1,"ok":false,"hops":[
      {"addr":"10.0.0.1","as":100}
    ]}
  ],
  "routing": {
    "asx": 100,
    "igp_down_links": [["10.0.0.1","10.0.0.2"]],
    "withdrawals": [{"at":"10.0.0.1","from":"10.0.1.1","dst_sensors":[1]}]
  }
}`

func TestReadAndConvert(t *testing.T) {
	sc, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Sensors != 2 || len(sc.Before) != 1 || len(sc.After) != 1 {
		t.Fatalf("scenario = %+v", sc)
	}
	m, err := sc.Measurements()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Before) != 1 || len(m.Before[0].Hops) != 3 {
		t.Fatalf("measurements = %+v", m)
	}
	if !m.Before[0].Hops[1].Unidentified {
		t.Fatal("star hop must become unidentified")
	}
	if m.Before[0].Hops[0].AS != 100 {
		t.Fatal("AS lost in conversion")
	}

	ri := sc.RoutingInfo()
	if ri == nil || ri.ASX != 100 {
		t.Fatalf("routing = %+v", ri)
	}
	if len(ri.IGPDownLinks) != 1 || ri.IGPDownLinks[0] != (core.Link{From: "10.0.0.1", To: "10.0.0.2"}) {
		t.Fatalf("igp downs = %v", ri.IGPDownLinks)
	}
	if len(ri.Withdrawals) != 1 || ri.Withdrawals[0].At != "10.0.0.1" {
		t.Fatalf("withdrawals = %+v", ri.Withdrawals)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"sensors":1,"bogus":true}`)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
}

func TestMeasurementsValidation(t *testing.T) {
	sc := &Scenario{
		Sensors: 1,
		After:   []Path{{Src: 0, Dst: 5, OK: true, Hops: []Hop{{Addr: "a"}}}},
	}
	if _, err := sc.Measurements(); err == nil {
		t.Fatal("invalid sensor index must fail")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	sc, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Sensors != sc.Sensors || len(sc2.Before) != len(sc.Before) {
		t.Fatal("round trip lost data")
	}
	if sc2.Routing == nil || sc2.Routing.ASX != sc.Routing.ASX {
		t.Fatal("round trip lost routing")
	}
}

func TestDumpTopology(t *testing.T) {
	f := topology.BuildFig2()
	d := DumpTopology(f.Topo)
	if len(d.ASes) != 5 {
		t.Fatalf("ASes = %d", len(d.ASes))
	}
	if len(d.Routers) != f.Topo.NumRouters() || len(d.Links) != f.Topo.NumLinks() {
		t.Fatalf("dump size mismatch: %d routers %d links", len(d.Routers), len(d.Links))
	}
	// Each neighbor pair appears exactly once.
	seen := map[[2]topology.ASN]bool{}
	for _, r := range d.Relationships {
		key := [2]topology.ASN{r.A, r.B}
		if seen[key] {
			t.Fatalf("relationship %v duplicated", key)
		}
		seen[key] = true
		if r.A >= r.B {
			t.Fatalf("relationships must be normalized a<b, got %v", key)
		}
	}
	if len(d.Relationships) != 4 {
		t.Fatalf("relationships = %d, want 4", len(d.Relationships))
	}
}

func TestWriteDOT(t *testing.T) {
	f := topology.BuildFig1()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, f.Topo); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph netdiag {") || !strings.Contains(out, "subgraph cluster_as1") {
		t.Fatalf("DOT output malformed:\n%s", out)
	}
	if strings.Count(out, " -- ") != f.Topo.NumLinks() {
		t.Fatalf("DOT edge count mismatch")
	}
}

func TestScenarioLG(t *testing.T) {
	sc, err := Read(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	lg := sc.LG()
	if lg == nil {
		t.Fatal("scenario has looking glasses")
	}
	if !lg.Available(100) || lg.Available(999) {
		t.Fatal("availability must follow the table keys")
	}
	path, ok := lg.ASPath(100, 1)
	if !ok || len(path) != 3 || path[1] != 150 {
		t.Fatalf("ASPath = %v, %v", path, ok)
	}
	if _, ok := lg.ASPath(100, 0); ok {
		t.Fatal("unscripted destination must miss")
	}
	empty := &Scenario{}
	if empty.LG() != nil {
		t.Fatal("no table -> nil oracle")
	}
}

func TestFromMeasurementsRoundTrip(t *testing.T) {
	m := &core.Measurements{
		NumSensors: 2,
		Before: []*core.TracePath{{
			SrcSensor: 0, DstSensor: 1, OK: true,
			Hops: []core.Hop{
				{Node: "a", AS: 10},
				{Node: "*u1", Unidentified: true},
				{Node: "b", AS: 20},
			},
		}},
		After: []*core.TracePath{{
			SrcSensor: 0, DstSensor: 1, OK: false,
			Hops: []core.Hop{{Node: "a", AS: 10}},
		}},
	}
	ri := &core.RoutingInfo{
		ASX:          10,
		IGPDownLinks: []core.Link{{From: "a", To: "c"}},
		Withdrawals:  []core.Withdrawal{{At: "a", From: "b", DstSensors: []int{1}}},
	}
	sc := FromMeasurements(m, ri)
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sc2.Measurements()
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Before) != 1 || len(m2.Before[0].Hops) != 3 {
		t.Fatalf("round trip lost hops: %+v", m2.Before)
	}
	if !m2.Before[0].Hops[1].Unidentified {
		t.Fatal("UH hop lost in round trip")
	}
	ri2 := sc2.RoutingInfo()
	if ri2 == nil || ri2.ASX != 10 || len(ri2.IGPDownLinks) != 1 || len(ri2.Withdrawals) != 1 {
		t.Fatalf("routing lost in round trip: %+v", ri2)
	}
	// Diagnosis on both sides must agree.
	ra, err := core.NDBgpIgp(m, ri)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.NDBgpIgp(m2, ri2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Hypothesis) != len(rb.Hypothesis) {
		t.Fatalf("diagnoses differ across the round trip: %d vs %d links",
			len(ra.Hypothesis), len(rb.Hypothesis))
	}
}
