// Package scenario defines the JSON interchange formats of the command
// line tools: measurement scenarios for cmd/netdiagnoser and topology dumps
// for cmd/topogen. The formats are plain and stable so external tooling
// (or a real sensor overlay) can produce them.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"netdiag/internal/core"
	"netdiag/internal/topology"
)

// Hop is one traceroute hop: an address (use "*" for unidentified hops)
// and, when identified, the AS number.
type Hop struct {
	Addr string       `json:"addr"`
	AS   topology.ASN `json:"as,omitempty"`
}

// Path is one traceroute.
type Path struct {
	Src  int   `json:"src"`
	Dst  int   `json:"dst"`
	OK   bool  `json:"ok"`
	Hops []Hop `json:"hops"`
}

// Withdrawal mirrors core.Withdrawal in JSON form.
type Withdrawal struct {
	At         string `json:"at"`
	From       string `json:"from"`
	DstSensors []int  `json:"dst_sensors"`
}

// Routing carries the optional control-plane observations.
type Routing struct {
	ASX          topology.ASN `json:"asx"`
	IGPDownLinks [][2]string  `json:"igp_down_links,omitempty"`
	Withdrawals  []Withdrawal `json:"withdrawals,omitempty"`
}

// Scenario is a full diagnosis input.
type Scenario struct {
	Sensors int      `json:"sensors"`
	Before  []Path   `json:"before"`
	After   []Path   `json:"after"`
	Routing *Routing `json:"routing,omitempty"`
	// LookingGlasses holds scripted Looking Glass answers for nd-lg:
	// AS -> destination sensor index -> AS path. ASes present as keys
	// are considered available.
	LookingGlasses map[topology.ASN]map[int][]topology.ASN `json:"looking_glasses,omitempty"`
}

// LGTable adapts the scenario's scripted Looking Glass data to the
// diagnosis interface.
type LGTable struct {
	table map[topology.ASN]map[int][]topology.ASN
}

// Available reports whether the AS has scripted answers.
func (t *LGTable) Available(as topology.ASN) bool {
	_, ok := t.table[as]
	return ok
}

// ASPath returns the scripted AS path.
func (t *LGTable) ASPath(from topology.ASN, dstSensor int) ([]topology.ASN, bool) {
	p, ok := t.table[from][dstSensor]
	return p, ok
}

// LG returns the scenario's Looking Glass oracle, or nil if the scenario
// carries no Looking Glass data.
func (s *Scenario) LG() core.LookingGlass {
	if len(s.LookingGlasses) == 0 {
		return nil
	}
	return &LGTable{table: s.LookingGlasses}
}

// Read decodes a scenario from JSON.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// Write encodes a scenario as indented JSON.
func (s *Scenario) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Measurements converts the scenario into diagnosis input. Unidentified
// hops ("*") get unique placeholder names.
func (s *Scenario) Measurements() (*core.Measurements, error) {
	m := &core.Measurements{NumSensors: s.Sensors}
	uh := 0
	conv := func(paths []Path) []*core.TracePath {
		var out []*core.TracePath
		for _, p := range paths {
			tp := &core.TracePath{SrcSensor: p.Src, DstSensor: p.Dst, OK: p.OK}
			for _, h := range p.Hops {
				if h.Addr == "*" {
					uh++
					tp.Hops = append(tp.Hops, core.Hop{
						Node:         core.Node(fmt.Sprintf("*uh%d", uh)),
						Unidentified: true,
					})
					continue
				}
				tp.Hops = append(tp.Hops, core.Hop{Node: core.Node(h.Addr), AS: h.AS})
			}
			out = append(out, tp)
		}
		return out
	}
	m.Before = conv(s.Before)
	m.After = conv(s.After)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// FromMeasurements converts diagnosis-space measurements (and optional
// routing observations) back into the JSON scenario form, so simulated
// trials can be exported for the netdiagnoser CLI or external tooling.
// Unidentified hops become "*".
func FromMeasurements(m *core.Measurements, ri *core.RoutingInfo) *Scenario {
	s := &Scenario{Sensors: m.NumSensors}
	conv := func(paths []*core.TracePath) []Path {
		var out []Path
		for _, p := range paths {
			sp := Path{Src: p.SrcSensor, Dst: p.DstSensor, OK: p.OK}
			for _, h := range p.Hops {
				if h.Unidentified {
					sp.Hops = append(sp.Hops, Hop{Addr: "*"})
					continue
				}
				sp.Hops = append(sp.Hops, Hop{Addr: string(h.Node), AS: h.AS})
			}
			out = append(out, sp)
		}
		return out
	}
	s.Before = conv(m.Before)
	s.After = conv(m.After)
	if ri != nil {
		r := &Routing{ASX: ri.ASX}
		for _, l := range ri.IGPDownLinks {
			r.IGPDownLinks = append(r.IGPDownLinks, [2]string{string(l.From), string(l.To)})
		}
		for _, w := range ri.Withdrawals {
			r.Withdrawals = append(r.Withdrawals, Withdrawal{
				At: string(w.At), From: string(w.From), DstSensors: w.DstSensors,
			})
		}
		s.Routing = r
	}
	return s
}

// RoutingInfo converts the optional routing section.
func (s *Scenario) RoutingInfo() *core.RoutingInfo {
	if s.Routing == nil {
		return nil
	}
	ri := &core.RoutingInfo{ASX: s.Routing.ASX}
	for _, l := range s.Routing.IGPDownLinks {
		ri.IGPDownLinks = append(ri.IGPDownLinks, core.Link{
			From: core.Node(l[0]), To: core.Node(l[1]),
		})
	}
	for _, w := range s.Routing.Withdrawals {
		ri.Withdrawals = append(ri.Withdrawals, core.Withdrawal{
			At: core.Node(w.At), From: core.Node(w.From), DstSensors: w.DstSensors,
		})
	}
	return ri
}

// TopoDump is the JSON form of a topology (cmd/topogen output).
type TopoDump struct {
	ASes          []TopoAS     `json:"ases"`
	Routers       []TopoRouter `json:"routers"`
	Links         []TopoLink   `json:"links"`
	Relationships []TopoRel    `json:"relationships"`
}

// TopoAS describes one AS of a dump.
type TopoAS struct {
	ASN  topology.ASN `json:"asn"`
	Kind string       `json:"kind"`
	Name string       `json:"name"`
}

// TopoRouter describes one router of a dump.
type TopoRouter struct {
	ID   topology.RouterID `json:"id"`
	AS   topology.ASN      `json:"as"`
	Name string            `json:"name"`
	Addr string            `json:"addr"`
}

// TopoLink describes one physical link of a dump.
type TopoLink struct {
	A    topology.RouterID `json:"a"`
	B    topology.RouterID `json:"b"`
	Cost int               `json:"cost"`
	Kind string            `json:"kind"`
}

// TopoRel describes one AS relationship (a's view of b).
type TopoRel struct {
	A   topology.ASN `json:"a"`
	B   topology.ASN `json:"b"`
	Rel string       `json:"rel"`
}

// DumpTopology converts a topology into its JSON form.
func DumpTopology(t *topology.Topology) *TopoDump {
	d := &TopoDump{}
	for _, asn := range t.ASNumbers() {
		as := t.AS(asn)
		d.ASes = append(d.ASes, TopoAS{ASN: asn, Kind: as.Kind.String(), Name: as.Name})
	}
	for i := 0; i < t.NumRouters(); i++ {
		r := t.Router(topology.RouterID(i))
		d.Routers = append(d.Routers, TopoRouter{ID: r.ID, AS: r.AS, Name: r.Name, Addr: r.Addr})
	}
	for _, l := range t.Links() {
		d.Links = append(d.Links, TopoLink{A: l.A, B: l.B, Cost: l.Cost, Kind: l.Kind.String()})
	}
	for _, a := range t.ASNumbers() {
		for _, b := range t.Neighbors(a) {
			if a < b {
				d.Relationships = append(d.Relationships, TopoRel{A: a, B: b, Rel: t.Rel(a, b).String()})
			}
		}
	}
	return d
}

// WriteDOT renders the topology in Graphviz DOT format, clustering routers
// by AS.
func WriteDOT(w io.Writer, t *topology.Topology) error {
	if _, err := fmt.Fprintln(w, "graph netdiag {"); err != nil {
		return err
	}
	for _, asn := range t.ASNumbers() {
		as := t.AS(asn)
		fmt.Fprintf(w, "  subgraph cluster_as%d {\n    label=%q;\n", asn, as.Name)
		for _, r := range as.Routers {
			fmt.Fprintf(w, "    r%d [label=%q];\n", r, t.Router(r).Name)
		}
		fmt.Fprintln(w, "  }")
	}
	for _, l := range t.Links() {
		style := ""
		if l.Kind == topology.Inter {
			style = " [style=dashed]"
		}
		fmt.Fprintf(w, "  r%d -- r%d%s;\n", l.A, l.B, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
