package probe

import (
	"strings"
	"testing"

	"netdiag/internal/topology"
)

func samplePath() *Path {
	return &Path{
		Src: 1, Dst: 4, OK: true,
		Hops: []Hop{
			{Addr: "10.0.0.1", Router: 1, AS: 10},
			{Addr: "10.0.1.1", Router: 2, AS: 20},
			{Addr: "10.0.1.2", Router: 3, AS: 20},
			{Addr: "10.0.2.1", Router: 4, AS: 30},
		},
	}
}

func TestPathLinks(t *testing.T) {
	p := samplePath()
	links := p.Links()
	if len(links) != 3 {
		t.Fatalf("links = %d, want 3", len(links))
	}
	if links[0] != [2]topology.RouterID{1, 2} || links[2] != [2]topology.RouterID{3, 4} {
		t.Fatalf("links = %v", links)
	}
	if (&Path{Hops: p.Hops[:1]}).Links() != nil {
		t.Fatal("single-hop path has no links")
	}
}

func TestPathString(t *testing.T) {
	p := samplePath()
	s := p.String()
	if !strings.Contains(s, "10.0.0.1 -> 10.0.1.1") {
		t.Fatalf("String = %q", s)
	}
	p.OK = false
	if !strings.Contains(p.String(), "!unreachable") {
		t.Fatal("failed path must be marked unreachable")
	}
}

func meshOf(t *testing.T) *Mesh {
	t.Helper()
	m := NewMesh([]topology.RouterID{1, 4})
	m.Paths[0][1] = samplePath()
	rev := samplePath()
	rev.Src, rev.Dst = 4, 1
	for i, j := 0, len(rev.Hops)-1; i < j; i, j = i+1, j-1 {
		rev.Hops[i], rev.Hops[j] = rev.Hops[j], rev.Hops[i]
	}
	m.Paths[1][0] = rev
	return m
}

func TestReachabilityAndAnyFailed(t *testing.T) {
	m := meshOf(t)
	r := m.Reachability()
	if !r[0][0] || !r[0][1] || !r[1][0] {
		t.Fatalf("reachability = %v", r)
	}
	if m.AnyFailed() {
		t.Fatal("healthy mesh reports failure")
	}
	m.Paths[0][1].OK = false
	r = m.Reachability()
	if r[0][1] || !r[1][0] {
		t.Fatalf("reachability after failure = %v", r)
	}
	if !m.AnyFailed() {
		t.Fatal("AnyFailed missed the broken pair")
	}
}

func TestMaskPreservesSensorsAndGroundTruth(t *testing.T) {
	m := meshOf(t)
	masked := m.Mask(map[topology.ASN]bool{20: true})
	p := masked.Paths[0][1]
	if p.Hops[0].Unidentified || p.Hops[3].Unidentified {
		t.Fatal("sensor endpoints must never be masked")
	}
	if !p.Hops[1].Unidentified || !p.Hops[2].Unidentified {
		t.Fatal("AS 20 hops must be masked")
	}
	// Ground truth (Router, AS) stays for evaluation.
	if p.Hops[1].Router != 2 || p.Hops[1].AS != 20 {
		t.Fatal("mask must keep ground-truth fields")
	}
	if p.Hops[1].Addr != "*" {
		t.Fatalf("masked addr = %q", p.Hops[1].Addr)
	}
	// Masking the sensor's own AS does nothing to the endpoints.
	m2 := m.Mask(map[topology.ASN]bool{10: true, 30: true})
	if m2.Paths[0][1].Hops[0].Unidentified {
		t.Fatal("source sensor masked")
	}
}

func TestCoveredASes(t *testing.T) {
	m := meshOf(t)
	cov := m.CoveredASes()
	for _, as := range []topology.ASN{10, 20, 30} {
		if !cov[as] {
			t.Fatalf("AS %d missing from covered set %v", as, cov)
		}
	}
	if len(cov) != 3 {
		t.Fatalf("covered = %v", cov)
	}
}

func TestMaskNilPaths(t *testing.T) {
	m := NewMesh([]topology.RouterID{1, 2})
	// Only one direction measured.
	m.Paths[0][1] = samplePath()
	masked := m.Mask(map[topology.ASN]bool{20: true})
	if masked.Paths[1][0] != nil {
		t.Fatal("nil path must stay nil")
	}
	if masked.Paths[0][1] == nil {
		t.Fatal("measured path lost")
	}
}
