// Package probe defines the measurement-plane types: traceroute paths,
// full-mesh measurement sets, and the masking of hops inside ASes that
// block traceroute (the paper's "unidentified hops", §3.4).
package probe

import (
	"context"
	"fmt"

	"netdiag/internal/pool"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Metrics instruments the measurement plane: how many full meshes were
// filled, how many sensor pairs were traced, and how many of those pairs
// came back unreachable. A nil *Metrics disables everything.
type Metrics struct {
	MeshFills        *telemetry.Counter
	PairsTraced      *telemetry.Counter
	PairsUnreachable *telemetry.Counter
	// Pool carries the shared pool-layer task metrics of the per-pair
	// traceroute fan-out.
	Pool *pool.Metrics
}

// NewMetrics returns the probe metrics of a registry (nil registry -> nil).
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		MeshFills:        r.Counter("probe.mesh_fills"),
		PairsTraced:      r.Counter("probe.pairs_traced"),
		PairsUnreachable: r.Counter("probe.pairs_unreachable"),
		Pool:             pool.NewMetrics(r),
	}
}

func (m *Metrics) poolMetrics() *pool.Metrics {
	if m == nil {
		return nil
	}
	return m.Pool
}

// meshFilled records one completed full mesh.
func (m *Metrics) meshFilled(mesh *Mesh) {
	if m == nil {
		return
	}
	m.MeshFills.Inc()
	traced, unreachable := int64(0), int64(0)
	for i := range mesh.Paths {
		for j, p := range mesh.Paths[i] {
			if i == j {
				continue
			}
			traced++
			if p == nil || !p.OK {
				unreachable++
			}
		}
	}
	m.PairsTraced.Add(traced)
	m.PairsUnreachable.Add(unreachable)
}

// Hop is one traceroute hop. For hops inside traceroute-blocking ASes the
// address is "*" and Unidentified is set; Router and AS keep the ground
// truth for evaluation but the diagnosis algorithms never look at them on
// unidentified hops.
type Hop struct {
	Addr         string
	Router       topology.RouterID
	AS           topology.ASN
	Unidentified bool
}

// Path is a traceroute result from Src to Dst. Hops always starts with the
// source router; when OK is true it ends at the destination router. When OK
// is false the hop list is the partial path up to where forwarding stopped
// (blackhole or loop).
type Path struct {
	Src, Dst topology.RouterID
	Hops     []Hop
	OK       bool
}

// Links returns the directed (router,router) pairs along the path.
func (p *Path) Links() [][2]topology.RouterID {
	if len(p.Hops) < 2 {
		return nil
	}
	out := make([][2]topology.RouterID, 0, len(p.Hops)-1)
	for i := 0; i+1 < len(p.Hops); i++ {
		out = append(out, [2]topology.RouterID{p.Hops[i].Router, p.Hops[i+1].Router})
	}
	return out
}

// Mesh is a full mesh of traceroutes among sensors, the measurement unit of
// the paper: every sensor traces to every other sensor and reports to AS-X.
type Mesh struct {
	Sensors []topology.RouterID
	// Paths[i][j] is the traceroute from Sensors[i] to Sensors[j]; the
	// diagonal is nil.
	Paths [][]*Path
}

// NewMesh allocates an empty mesh for the given sensors.
func NewMesh(sensors []topology.RouterID) *Mesh {
	m := &Mesh{Sensors: sensors, Paths: make([][]*Path, len(sensors))}
	for i := range m.Paths {
		m.Paths[i] = make([]*Path, len(sensors))
	}
	return m
}

// FillMesh builds a full mesh by invoking trace for every ordered sensor
// pair (i, j), i != j, fanning the pairs out over at most `workers`
// goroutines. trace must be safe for concurrent use when workers > 1 (a
// traceroute over a converged, read-only forwarding state is). Each pair's
// result lands in its own Paths slot, so the mesh is identical at any
// parallelism level.
func FillMesh(sensors []topology.RouterID, workers int, trace func(i, j int) *Path) *Mesh {
	return FillMeshM(sensors, workers, trace, nil)
}

// FillMeshM is FillMesh with measurement telemetry: the fill, every traced
// pair and every unreachable pair are counted, and the per-pair fan-out
// reports pool task metrics. A nil met reproduces FillMesh exactly.
func FillMeshM(sensors []topology.RouterID, workers int, trace func(i, j int) *Path, met *Metrics) *Mesh {
	m, _ := FillMeshCtx(context.Background(), sensors, workers, trace, met)
	return m
}

// FillMeshCtx is FillMeshM with cancellation: ctx is checked between
// sensor-pair tasks, so a mesh measurement under a per-request deadline
// aborts promptly and returns ctx.Err() with a partially filled mesh. For
// an uncancelled context the mesh is identical to FillMeshM at any
// parallelism level. A nil ctx means context.Background().
func FillMeshCtx(ctx context.Context, sensors []topology.RouterID, workers int, trace func(i, j int) *Path, met *Metrics) (*Mesh, error) {
	m := NewMesh(sensors)
	n := len(sensors)
	type job struct{ i, j int }
	jobs := make([]job, 0, n*n-n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				jobs = append(jobs, job{i, j})
			}
		}
	}
	err := pool.ForEachM(ctx, workers, len(jobs), func(k int) error {
		m.Paths[jobs[k].i][jobs[k].j] = trace(jobs[k].i, jobs[k].j)
		return nil
	}, met.poolMetrics())
	if err != nil {
		return m, err
	}
	met.meshFilled(m)
	return m, nil
}

// Clone returns a mesh sharing the sensor slice and all Path pointers but
// with freshly allocated Paths rows, so re-probing pairs into the clone
// (FillPairsCtx) never mutates the original. Paths are treated as
// immutable once filled, so sharing the pointers is safe.
func (m *Mesh) Clone() *Mesh {
	out := &Mesh{Sensors: m.Sensors, Paths: make([][]*Path, len(m.Paths))}
	for i := range m.Paths {
		out.Paths[i] = append([]*Path(nil), m.Paths[i]...)
	}
	return out
}

// FillPairsCtx re-probes only the given (i, j) sensor-pair indices into an
// existing mesh, fanning out like FillMeshCtx. This is the delta-mesh
// primitive: a caller that knows which pairs a routing change could have
// touched (netsim.DirtyScope) overwrites exactly those slots and keeps
// every other path untouched. Pairs outside the mesh or on the diagonal
// are ignored. The slot writes are per-pair, so the result is identical at
// any parallelism level.
func FillPairsCtx(ctx context.Context, m *Mesh, pairs [][2]int, workers int, trace func(i, j int) *Path, met *Metrics) error {
	jobs := make([][2]int, 0, len(pairs))
	for _, p := range pairs {
		if p[0] == p[1] || p[0] < 0 || p[1] < 0 || p[0] >= len(m.Sensors) || p[1] >= len(m.Sensors) {
			continue
		}
		jobs = append(jobs, p)
	}
	err := pool.ForEachM(ctx, workers, len(jobs), func(k int) error {
		m.Paths[jobs[k][0]][jobs[k][1]] = trace(jobs[k][0], jobs[k][1])
		return nil
	}, met.poolMetrics())
	if err != nil {
		return err
	}
	met.pairsFilled(m, jobs)
	return nil
}

// pairsFilled records a partial (delta) re-probe: only the re-traced pairs
// count, and no full mesh fill is recorded.
func (m *Metrics) pairsFilled(mesh *Mesh, pairs [][2]int) {
	if m == nil {
		return
	}
	unreachable := int64(0)
	for _, pr := range pairs {
		if p := mesh.Paths[pr[0]][pr[1]]; p == nil || !p.OK {
			unreachable++
		}
	}
	m.PairsTraced.Add(int64(len(pairs)))
	m.PairsUnreachable.Add(unreachable)
}

// Reachability returns the reachability matrix R of the paper: R[i][j]
// is true when the path from sensor i to sensor j works.
func (m *Mesh) Reachability() [][]bool {
	r := make([][]bool, len(m.Sensors))
	for i := range r {
		r[i] = make([]bool, len(m.Sensors))
		for j := range r[i] {
			if i == j {
				r[i][j] = true
				continue
			}
			r[i][j] = m.Paths[i][j] != nil && m.Paths[i][j].OK
		}
	}
	return r
}

// AnyFailed reports whether at least one sensor pair is unreachable — the
// trigger condition for invoking the troubleshooter.
func (m *Mesh) AnyFailed() bool {
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if i != j && (p == nil || !p.OK) {
				return true
			}
		}
	}
	return false
}

// Mask returns a copy of the mesh with every hop inside a blocked AS turned
// into an unidentified hop. Sensors themselves are never masked (they
// actively participate), matching the paper's model where blocking hides
// routers, not end hosts.
func (m *Mesh) Mask(blocked map[topology.ASN]bool) *Mesh {
	out := NewMesh(m.Sensors)
	for i := range m.Paths {
		for j, p := range m.Paths[i] {
			if p == nil {
				continue
			}
			cp := *p
			cp.Hops = make([]Hop, len(p.Hops))
			copy(cp.Hops, p.Hops)
			for h := range cp.Hops {
				hop := &cp.Hops[h]
				if blocked[hop.AS] && hop.Router != p.Src && hop.Router != p.Dst {
					hop.Addr = "*"
					hop.Unidentified = true
				}
			}
			out.Paths[i][j] = &cp
		}
	}
	return out
}

// String renders a path like traceroute output, for logs and examples.
func (p *Path) String() string {
	s := ""
	for i, h := range p.Hops {
		if i > 0 {
			s += " -> "
		}
		s += h.Addr
	}
	if !p.OK {
		s += " -> !unreachable"
	}
	return s
}

// CoveredASes returns the set of ASes traversed by any path in the mesh,
// counting unidentified hops' (ground-truth) ASes as covered — this is the
// universe used for the paper's AS-level specificity.
func (m *Mesh) CoveredASes() map[topology.ASN]bool {
	out := map[topology.ASN]bool{}
	for i := range m.Paths {
		for _, p := range m.Paths[i] {
			if p == nil {
				continue
			}
			for _, h := range p.Hops {
				out[h.AS] = true
			}
		}
	}
	return out
}

// PairKey formats a sensor pair for diagnostics.
func PairKey(i, j int) string { return fmt.Sprintf("%d->%d", i, j) }
