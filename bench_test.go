// Benchmarks regenerating every figure of the paper's evaluation (§5) at a
// reduced scale, one benchmark per table/figure. Each benchmark reports the
// headline metric of its figure via b.ReportMetric, so `go test -bench .`
// doubles as a quick reproduction check; cmd/ndsim runs the full scale.
package netdiag_test

import (
	"testing"

	"netdiag/internal/experiment"
)

// benchCfg is the reduced per-iteration workload: one placement, a handful
// of impactful failures. Parallel placements are disabled so the benchmark
// measures single-threaded cost.
func benchCfg(seed int64) experiment.Config {
	cfg := experiment.DefaultConfig(seed)
	cfg.Placements = 1
	cfg.FailuresPerPlacement = 5
	cfg.Parallel = false
	return cfg
}

func seriesMean(fig *experiment.Figure, name string) float64 {
	for _, s := range fig.Series {
		if s.Name == name {
			sum := 0.0
			for _, y := range s.Y {
				sum += y
			}
			if len(s.Y) > 0 {
				return sum / float64(len(s.Y))
			}
		}
	}
	return -1
}

// BenchmarkFigure5 regenerates the sensor-placement vs diagnosability
// study (Figure 5).
func BenchmarkFigure5(b *testing.B) {
	var lastRandom float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure5(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		lastRandom = seriesMean(fig, "random")
	}
	b.ReportMetric(lastRandom, "diag(random)")
}

// BenchmarkFigure6 regenerates Tomo's sensitivity CDFs (Figure 6).
func BenchmarkFigure6(b *testing.B) {
	var tomo1, tomo3 float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure6(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		tomo1 = fig.CDFs["tomo 1-link"].Mean()
		tomo3 = fig.CDFs["tomo 3-link"].Mean()
	}
	b.ReportMetric(tomo1, "sens(tomo,1link)")
	b.ReportMetric(tomo3, "sens(tomo,3link)")
}

// BenchmarkFigure7 regenerates the Tomo vs ND-edge sensitivity comparison
// (Figure 7).
func BenchmarkFigure7(b *testing.B) {
	var tomo, edge float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure7(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		tomo = fig.CDFs["tomo 3-link"].Mean()
		edge = fig.CDFs["nd-edge 3-link"].Mean()
	}
	b.ReportMetric(tomo, "sens(tomo)")
	b.ReportMetric(edge, "sens(nd-edge)")
}

// BenchmarkFigure8 regenerates the ND-edge specificity CDFs (Figure 8).
func BenchmarkFigure8(b *testing.B) {
	var link, mc float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure8(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		link = fig.CDFs["nd-edge 1-link"].Mean()
		mc = fig.CDFs["nd-edge misconfig"].Mean()
	}
	b.ReportMetric(link, "spec(1link)")
	b.ReportMetric(mc, "spec(misconfig)")
}

// BenchmarkFigure9 regenerates the diagnosability vs specificity scatter
// (Figure 9).
func BenchmarkFigure9(b *testing.B) {
	var minSpec float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure9(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		minSpec = 1.0
		for _, p := range fig.Points {
			if p.Y < minSpec {
				minSpec = p.Y
			}
		}
	}
	b.ReportMetric(minSpec, "minSpec")
}

// BenchmarkFigure10 regenerates the ND-edge vs ND-bgpigp comparison
// (Figure 10).
func BenchmarkFigure10(b *testing.B) {
	var edge, bgpigp float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure10(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		edge = fig.CDFs["nd-edge specificity"].Mean()
		bgpigp = fig.CDFs["nd-bgpigp specificity"].Mean()
	}
	b.ReportMetric(edge, "spec(nd-edge)")
	b.ReportMetric(bgpigp, "spec(nd-bgpigp)")
}

// BenchmarkFigure11 regenerates the blocked-traceroute study (Figure 11).
func BenchmarkFigure11(b *testing.B) {
	var lg, bg float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(i + 1))
		cfg.FailuresPerPlacement = 3 // 9 f_b levels inside
		fig, err := experiment.Figure11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lg = seriesMean(fig, "nd-lg AS-sensitivity")
		bg = seriesMean(fig, "nd-bgpigp AS-sensitivity")
	}
	b.ReportMetric(lg, "ASsens(nd-lg)")
	b.ReportMetric(bg, "ASsens(nd-bgpigp)")
}

// BenchmarkFigure12 regenerates the Looking-Glass availability study
// (Figure 12).
func BenchmarkFigure12(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(i + 1))
		cfg.FailuresPerPlacement = 2 // 3 f_b x 6 LG levels inside
		fig, err := experiment.Figure12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = seriesMean(fig, "nd-lg fb=0.50")
	}
	b.ReportMetric(last, "ASsens(fb=.5)")
}

// BenchmarkRouterFailure regenerates the §5.2 router-failure study.
func BenchmarkRouterFailure(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RouterFailureStudy(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		rate = seriesMean(fig, "detection rate")
	}
	b.ReportMetric(rate, "detectRate")
}

// BenchmarkASLevelEdge regenerates the §5.2 AS-granularity study.
func BenchmarkASLevelEdge(b *testing.B) {
	var sens float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.ASLevelStudy(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		sens = fig.CDFs["AS-sensitivity"].Mean()
	}
	b.ReportMetric(sens, "ASsens")
}

// BenchmarkASXPosition regenerates the §5.3 AS-X position study.
func BenchmarkASXPosition(b *testing.B) {
	var core, stub float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.ASXPositionStudy(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		core = fig.CDFs["core AS-X specificity"].Mean()
		stub = fig.CDFs["stub AS-X specificity"].Mean()
	}
	b.ReportMetric(core, "spec(core)")
	b.ReportMetric(stub, "spec(stub)")
}

// BenchmarkAblation measures the per-feature contribution study.
func BenchmarkAblation(b *testing.B) {
	var edge, tomo float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.AblationStudy(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		edge = fig.CDFs["nd-edge (both) sens"].Mean()
		tomo = fig.CDFs["tomo (no features) sens"].Mean()
	}
	b.ReportMetric(edge, "sens(nd-edge)")
	b.ReportMetric(tomo, "sens(tomo)")
}

// BenchmarkSCFSBaseline measures the SCFS-vs-Tomo baseline study.
func BenchmarkSCFSBaseline(b *testing.B) {
	var tomo, scfs float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.SCFSStudy(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		tomo = fig.CDFs["tomo sensitivity"].Mean()
		scfs = fig.CDFs["scfs-union sensitivity"].Mean()
	}
	b.ReportMetric(tomo, "sens(tomo)")
	b.ReportMetric(scfs, "sens(scfs)")
}

// BenchmarkPlacementOpt measures the greedy-placement extension study.
func BenchmarkPlacementOpt(b *testing.B) {
	var greedy float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.PlacementOptStudy(benchCfg(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		greedy = seriesMean(fig, "greedy placement D")
	}
	b.ReportMetric(greedy, "D(greedy)")
}
