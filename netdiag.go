// Package netdiag is a from-scratch reproduction of NetDiagnoser
// (Dhamdhere, Teixeira, Dovrolis, Diot — CoNEXT 2007): troubleshooting
// network unreachabilities using end-to-end probes and routing data.
//
// The package is a facade over the implementation packages:
//
//   - the diagnosis algorithms (Tomo, ND-edge, ND-bgpigp, ND-LG, the SCFS
//     baseline and the diagnosability metric) from internal/core;
//   - the evaluation metrics (sensitivity/specificity and AS-level
//     variants) from internal/metrics;
//   - the simulation substrate (multi-AS topologies, IGP and BGP routing,
//     traceroute, failure injection) from internal/topology, internal/igp,
//     internal/bgp and internal/netsim;
//   - the paper's experiment harness from internal/experiment.
//
// A minimal diagnosis needs only measurements:
//
//	meas := &netdiag.Measurements{NumSensors: 2, Before: ..., After: ...}
//	d := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo))
//	res, err := d.Diagnose(ctx, meas)
//	for _, h := range res.Hypothesis { fmt.Println(h.Link) }
//
// See examples/ for end-to-end scenarios driven through the simulator, and
// cmd/ndsim for the reproduction of every figure in the paper's evaluation.
package netdiag

import (
	"context"

	"netdiag/internal/bgp"
	"netdiag/internal/core"
	"netdiag/internal/experiment"
	"netdiag/internal/lookingglass"
	"netdiag/internal/metrics"
	"netdiag/internal/monitor"
	"netdiag/internal/netsim"
	"netdiag/internal/probe"
	"netdiag/internal/telemetry"
	"netdiag/internal/topology"
)

// Diagnosis types (see internal/core).
type (
	// Node identifies a vertex of the diagnosis graph.
	Node = core.Node
	// Link is a directed edge of the diagnosis graph.
	Link = core.Link
	// Hop is one traceroute hop as the troubleshooter sees it.
	Hop = core.Hop
	// TracePath is one sensor-to-sensor traceroute.
	TracePath = core.TracePath
	// Measurements is a full diagnosis input (T- and T+ meshes).
	Measurements = core.Measurements
	// Options selects diagnosis features for Run.
	Options = core.Options
	// Result is a diagnosis output: the hypothesis set H.
	Result = core.Result
	// HypLink is one hypothesis entry with physical/AS attribution.
	HypLink = core.HypLink
	// RoutingInfo carries AS-X's control-plane observations.
	RoutingInfo = core.RoutingInfo
	// Withdrawal is one observed BGP withdrawal.
	Withdrawal = core.Withdrawal
	// LookingGlass answers AS-path queries for ND-LG.
	LookingGlass = core.LookingGlass
	// WireResult is the stable JSON wire form of a Result, shared by the
	// netdiagnoser CLI (-json) and the ndserve HTTP API; produce it with
	// Result.Wire and render it with WireResult.Encode.
	WireResult = core.WireResult
	// WireHyp is one hypothesis entry of a WireResult.
	WireHyp = core.WireHyp
)

// Topology and simulation types (see internal/topology, internal/netsim).
type (
	// ASN is an autonomous-system number.
	ASN = topology.ASN
	// RouterID identifies a router.
	RouterID = topology.RouterID
	// LinkID identifies a physical link.
	LinkID = topology.LinkID
	// Topology is an immutable multi-AS router-level topology.
	Topology = topology.Topology
	// TopologyBuilder constructs topologies.
	TopologyBuilder = topology.Builder
	// Network is a converged simulated internetwork.
	Network = netsim.Network
	// ExportFilter is a BGP export filter (simulated misconfiguration).
	ExportFilter = bgp.ExportFilter
	// Research is a generated research-Internet topology with AS roles.
	Research = topology.Research
	// Prefix names an announced destination prefix.
	Prefix = bgp.Prefix
)

// Tomo runs the multi-AS Boolean tomography baseline (paper §2). It is a
// thin wrapper over New(WithAlgorithm(TomoAlgo)).
//
// Deprecated: use New(WithAlgorithm(TomoAlgo)).Diagnose — the session
// API takes a context, reuses its configuration across calls and is what
// every option (parallelism, telemetry, routing info) attaches to.
func Tomo(m *Measurements) (*Result, error) {
	return New(WithAlgorithm(TomoAlgo)).Diagnose(context.Background(), m)
}

// NDEdge runs NetDiagnoser with logical links and reroute information
// (paper §3.1–3.2). It is a thin wrapper over New(WithAlgorithm(NDEdgeAlgo)).
//
// Deprecated: use New(WithAlgorithm(NDEdgeAlgo)).Diagnose — see Tomo.
func NDEdge(m *Measurements) (*Result, error) {
	return New(WithAlgorithm(NDEdgeAlgo)).Diagnose(context.Background(), m)
}

// NDBgpIgp runs ND-edge augmented with IGP link-down events and BGP
// withdrawals from the troubleshooter's AS (paper §3.3). It is a thin
// wrapper over New(WithAlgorithm(NDBgpIgpAlgo), WithRoutingInfo(ri)).
//
// Deprecated: use New(WithAlgorithm(NDBgpIgpAlgo), WithRoutingInfo(ri)).
// Diagnose — see Tomo.
func NDBgpIgp(m *Measurements, ri *RoutingInfo) (*Result, error) {
	return New(WithAlgorithm(NDBgpIgpAlgo), WithRoutingInfo(ri)).Diagnose(context.Background(), m)
}

// NDLG runs the full NetDiagnoser with Looking-Glass support for
// traceroute-blocking ASes (paper §3.4). It is a thin wrapper over
// New(WithAlgorithm(NDLGAlgo), WithRoutingInfo(ri), WithLookingGlass(lg)).
//
// Deprecated: use New(WithAlgorithm(NDLGAlgo), WithRoutingInfo(ri),
// WithLookingGlass(lg)).Diagnose — see Tomo.
func NDLG(m *Measurements, ri *RoutingInfo, lg LookingGlass) (*Result, error) {
	return New(WithAlgorithm(NDLGAlgo), WithRoutingInfo(ri), WithLookingGlass(lg)).
		Diagnose(context.Background(), m)
}

// Run executes a custom configuration of the diagnosis engine.
//
// Deprecated: use New with the matching options and Diagnose; Options is
// the engine-internal form that the Diagnoser options assemble for you.
func Run(m *Measurements, opts Options) (*Result, error) { return core.Run(m, opts) }

// SCFS runs Duffield's single-source tree baseline (paper §2.1).
func SCFS(paths []*TracePath) ([]Link, error) { return core.SCFS(paths) }

// Diagnosability computes the D(G) metric of paper §4.
func Diagnosability(paths []*TracePath) float64 { return core.Diagnosability(paths) }

// DisplayNode renders a node for humans, collapsing logical-node keys to
// the paper's "router(AS)" form.
func DisplayNode(n Node) string { return core.Display(n) }

// Sensitivity is |F∩H|/|F| (paper §4).
func Sensitivity(failed, hypothesis []Link) float64 { return metrics.Sensitivity(failed, hypothesis) }

// Specificity is the fraction of non-failed probed links correctly left
// out of the hypothesis (paper §4).
func Specificity(universe, failed, hypothesis []Link) float64 {
	return metrics.Specificity(universe, failed, hypothesis)
}

// ASSensitivity is the AS-granularity sensitivity (paper §4).
func ASSensitivity(failedASes, hypASes []ASN) float64 {
	return metrics.ASSensitivity(failedASes, hypASes)
}

// ASSpecificity is the AS-granularity specificity over probe-covered ASes.
func ASSpecificity(covered, failedASes, hypASes []ASN) float64 {
	return metrics.ASSpecificity(covered, failedASes, hypASes)
}

// NewTopologyBuilder returns an empty topology builder.
func NewTopologyBuilder() *TopologyBuilder { return topology.NewBuilder() }

// GenerateResearch builds the paper's 165-AS evaluation topology.
func GenerateResearch(seed int64) (*Research, error) {
	return topology.GenerateResearch(topology.DefaultResearchConfig(seed))
}

// NewNetwork converges a simulated network announcing one prefix per
// origin AS. Options (e.g. WithNetworkParallelism) tune the simulation.
func NewNetwork(t *Topology, origins []ASN, opts ...NetworkOption) (*Network, error) {
	return netsim.New(t, origins, opts...)
}

// Telemetry types (see internal/telemetry). A Telemetry registry collects
// counters, gauges and latency histograms from every pipeline layer it is
// attached to; everything is off (and free) until a registry is passed in.
type (
	// Telemetry is a registry of named pipeline metrics.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry's metrics.
	TelemetrySnapshot = telemetry.Snapshot
	// Span is one timed phase of a Diagnose run (Result.Telemetry).
	Span = telemetry.Span
	// DebugServer serves /debug/vars and /debug/pprof for a registry.
	DebugServer = telemetry.DebugServer
)

// NewTelemetry returns an empty telemetry registry. Attach it with
// WithTelemetry (diagnosis), WithNetworkTelemetry (simulation) or
// DetectorConfig.Telemetry (monitoring), and serve it with ServeDebug.
func NewTelemetry() *Telemetry { return telemetry.New() }

// ServeDebug starts an HTTP debug server on addr exposing the registry at
// /debug/vars (expvar, under the "netdiag" key) and the runtime profiles at
// /debug/pprof. Close the returned server to stop it.
func ServeDebug(addr string, r *Telemetry) (*DebugServer, error) {
	return telemetry.ServeDebug(addr, r)
}

// WithNetworkTelemetry attaches a telemetry registry to a simulated
// Network: convergence-phase latencies, SPF-cache hit rates, BGP fixpoint
// rounds, probe-mesh and worker-pool metrics.
func WithNetworkTelemetry(r *Telemetry) NetworkOption { return netsim.WithTelemetry(r) }

// NewLookingGlassRegistry builds a Looking Glass oracle over converged BGP
// states (see internal/lookingglass).
var NewLookingGlassRegistry = lookingglass.New

// Failure detection (paper §6; see internal/monitor).
type (
	// Detector raises alarms for unreachabilities that persist across
	// measurement rounds, filtering transient events.
	Detector = monitor.Detector
	// DetectorConfig parameterizes a Detector.
	DetectorConfig = monitor.Config
	// Alarm is a confirmed unreachability event with its T-/T+ meshes.
	Alarm = monitor.Alarm
)

// NewDetector returns a failure detector.
func NewDetector(cfg DetectorConfig) *Detector { return monitor.New(cfg) }

// Measurement-plane types (see internal/probe).
type (
	// Mesh is a full mesh of traceroutes among sensors.
	Mesh = probe.Mesh
	// ProbePath is one simulated traceroute result.
	ProbePath = probe.Path
)

// Simulator-to-diagnosis adapters (see internal/experiment).
var (
	// ToMeasurements converts pre/post-failure meshes into diagnosis input.
	ToMeasurements = experiment.ToMeasurements
	// ProbedLinks extracts the probed directed physical link universe E.
	ProbedLinks = experiment.ProbedLinks
	// AdaptWithdrawals converts simulator withdrawals for the diagnoser.
	AdaptWithdrawals = experiment.AdaptWithdrawals
	// AdaptIGPDowns renders AS-X's failed intra-AS links for the diagnoser.
	AdaptIGPDowns = experiment.AdaptIGPDowns
	// ObserveWithdrawals diffs two converged BGP states at AS-X's border.
	ObserveWithdrawals = netsim.Withdrawals
	// BuildFig2 constructs the paper's Figure 2 example topology.
	BuildFig2 = topology.BuildFig2
	// BuildFig1 constructs the paper's Figure 1 tree topology.
	BuildFig1 = topology.BuildFig1
	// PrefixFor names the prefix originated by an AS.
	PrefixFor = bgp.PrefixFor
)

// Experiment harness re-exports: every evaluation figure of the paper.
var (
	// DefaultExperimentConfig is the paper-scale experiment configuration.
	DefaultExperimentConfig = experiment.DefaultConfig
	// Figure5 through Figure12 regenerate the paper's evaluation figures.
	Figure5  = experiment.Figure5
	Figure6  = experiment.Figure6
	Figure7  = experiment.Figure7
	Figure8  = experiment.Figure8
	Figure9  = experiment.Figure9
	Figure10 = experiment.Figure10
	Figure11 = experiment.Figure11
	Figure12 = experiment.Figure12
)
