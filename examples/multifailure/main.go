// Multifailure: on the paper's 165-AS research-Internet topology, fail
// three links at once. Some failures are recovered by rerouting, others
// break sensor pairs. Tomo (which ignores rerouted paths) misses the
// rerouted failures; ND-edge recovers them from reroute sets; ND-bgpigp
// additionally tightens the hypothesis with AS-X's BGP withdrawals.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"netdiag"
)

func main() {
	research, err := netdiag.GenerateResearch(2007)
	if err != nil {
		log.Fatal(err)
	}
	topo := research.Topo

	// Ten sensors at random stub ASes, as in the paper's evaluation.
	rng := rand.New(rand.NewSource(11))
	var sensors []netdiag.RouterID
	var origins []netdiag.ASN
	for _, idx := range rng.Perm(len(research.Stubs))[:10] {
		as := research.Stubs[idx]
		origins = append(origins, as)
		sensors = append(sensors, topo.AS(as).Routers[0])
	}
	net, err := netdiag.NewNetwork(topo, origins)
	if err != nil {
		log.Fatal(err)
	}
	before := net.Mesh(sensors)
	beforeBGP := net.BGP()
	universe := netdiag.ProbedLinks(topo, before)
	fmt.Printf("overlay: 10 sensors, %d probed directed links, diagnosability %.2f\n",
		len(universe), netdiag.Diagnosability(netdiag.ToMeasurements(before, before).Before))

	// Fail three random probed links (retry until some pair breaks).
	asx := research.Cores[0] // the troubleshooter: Abilene
	var truth []netdiag.Link
	var after *netdiag.Mesh
	for {
		var fail []netdiag.LinkID
		seen := map[netdiag.LinkID]bool{}
		for len(fail) < 3 {
			l := universe[rng.Intn(len(universe))]
			ra, _ := topo.RouterByAddr(string(l.From))
			rb, _ := topo.RouterByAddr(string(l.To))
			pl, _ := topo.LinkBetween(ra.ID, rb.ID)
			if !seen[pl.ID] {
				seen[pl.ID] = true
				fail = append(fail, pl.ID)
			}
		}
		for _, id := range fail {
			net.FailLink(id)
		}
		if err := net.Reconverge(); err != nil {
			log.Fatal(err)
		}
		after = net.Mesh(sensors)
		if after.AnyFailed() {
			truth = truth[:0]
			inE := map[netdiag.Link]bool{}
			for _, l := range universe {
				inE[l] = true
			}
			for _, id := range fail {
				pl := topo.Link(id)
				a, b := topo.Router(pl.A).Addr, topo.Router(pl.B).Addr
				for _, cand := range []netdiag.Link{
					{From: netdiag.Node(a), To: netdiag.Node(b)},
					{From: netdiag.Node(b), To: netdiag.Node(a)},
				} {
					if inE[cand] {
						truth = append(truth, cand)
					}
				}
				fmt.Printf("failed link: %s -- %s\n", topo.Router(pl.A).Name, topo.Router(pl.B).Name)
			}
			break
		}
		// All three failures were rerouted: the troubleshooter would not
		// even be invoked. Reset and draw again.
		for _, id := range fail {
			net.RestoreLink(id)
		}
		if err := net.Reconverge(); err != nil {
			log.Fatal(err)
		}
	}

	failedPairs := 0
	r := after.Reachability()
	for i := range r {
		for j := range r[i] {
			if !r[i][j] {
				failedPairs++
			}
		}
	}
	fmt.Printf("%d of 90 sensor pairs became unreachable\n\n", failedPairs)

	meas := netdiag.ToMeasurements(before, after)
	routing := &netdiag.RoutingInfo{
		ASX:          asx,
		IGPDownLinks: netdiag.AdaptIGPDowns(net, asx),
		Withdrawals: netdiag.AdaptWithdrawals(topo,
			netdiag.ObserveWithdrawals(topo, beforeBGP, net.BGP(), asx), origins),
	}

	report := func(name string, res *netdiag.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s |H|=%2d  sensitivity %.2f  specificity %.3f\n",
			name, len(res.PhysLinks()),
			netdiag.Sensitivity(truth, res.PhysLinks()),
			netdiag.Specificity(universe, truth, res.PhysLinks()))
	}
	ctx := context.Background()
	tomo, err := netdiag.New(netdiag.WithAlgorithm(netdiag.TomoAlgo)).Diagnose(ctx, meas)
	report("Tomo", tomo, err)
	edge, err := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo)).Diagnose(ctx, meas)
	report("ND-edge", edge, err)
	bgpigp, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
	).Diagnose(ctx, meas)
	report("ND-bgpigp", bgpigp, err)

	fmt.Printf("\nAS-X (%s) observed %d BGP withdrawal(s) and %d IGP link-down(s)\n",
		topo.AS(asx).Name, len(routing.Withdrawals), len(routing.IGPDownLinks)/2)
}
