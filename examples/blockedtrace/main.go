// Blockedtrace: some ASes block traceroute, hiding their routers behind
// "*" hops. A failure inside a blocked AS cannot be pinned to a link, but
// ND-LG maps the unidentified hops to ASes using Looking Glass AS-path
// queries and still names the AS responsible (paper §3.4).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"netdiag"
)

func main() {
	research, err := netdiag.GenerateResearch(2007)
	if err != nil {
		log.Fatal(err)
	}
	topo := research.Topo

	rng := rand.New(rand.NewSource(23))
	var sensors []netdiag.RouterID
	var origins []netdiag.ASN
	for _, idx := range rng.Perm(len(research.Stubs))[:10] {
		as := research.Stubs[idx]
		origins = append(origins, as)
		sensors = append(sensors, topo.AS(as).Routers[0])
	}
	net, err := netdiag.NewNetwork(topo, origins)
	if err != nil {
		log.Fatal(err)
	}
	before := net.Mesh(sensors)
	beforeBGP := net.BGP()
	asx := research.Cores[0]

	// Collect candidate faults: probed intra-AS links of transit ASes
	// (each paired with blocking that AS), then try them until one breaks
	// a sensor pair — reroutable failures never invoke the troubleshooter.
	sensorAS := map[netdiag.ASN]bool{}
	for _, a := range origins {
		sensorAS[a] = true
	}
	var cands []cand
	for _, l := range netdiag.ProbedLinks(topo, before) {
		ra, _ := topo.RouterByAddr(string(l.From))
		rb, _ := topo.RouterByAddr(string(l.To))
		if ra.AS != rb.AS || sensorAS[ra.AS] || ra.AS == asx {
			continue
		}
		if pl, ok := topo.LinkBetween(ra.ID, rb.ID); ok {
			cands = append(cands, cand{as: ra.AS, link: pl.ID})
		}
	}
	if len(cands) == 0 {
		log.Fatal("no probed intra-AS transit links; try another seed")
	}

	var blockedAS netdiag.ASN
	var after *netdiag.Mesh
	for _, c := range rngShuffle(rng, cands) {
		net.FailLink(c.link)
		if err := net.Reconverge(); err != nil {
			log.Fatal(err)
		}
		m := net.Mesh(sensors)
		if m.AnyFailed() {
			blockedAS, after = c.as, m
			break
		}
		net.RestoreLink(c.link)
		if err := net.Reconverge(); err != nil {
			log.Fatal(err)
		}
	}
	if after == nil {
		log.Fatal("every candidate failure was rerouted; try another seed")
	}
	blocked := map[netdiag.ASN]bool{blockedAS: true}
	fmt.Printf("blocking traceroute in %s and failing one of its internal links\n\n",
		topo.AS(blockedAS).Name)

	// The troubleshooter sees masked meshes: hops in the blocked AS are
	// stars.
	bm, am := before.Mask(blocked), after.Mask(blocked)
	for i := range am.Paths {
		for j, p := range am.Paths[i] {
			if i != j && !p.OK {
				fmt.Printf("first failed traceroute (%d->%d): %s\n", i, j, bm.Paths[i][j])
				goto found
			}
		}
	}
found:
	meas := netdiag.ToMeasurements(bm, am)
	routing := &netdiag.RoutingInfo{
		ASX: asx,
		Withdrawals: netdiag.AdaptWithdrawals(topo,
			netdiag.ObserveWithdrawals(topo, beforeBGP, net.BGP(), asx), origins),
	}
	lg := netdiag.NewLookingGlassRegistry(net.BGP(), beforeBGP, nil, asx, prefixes(origins))

	ctx := context.Background()
	// ND-bgpigp ignores unidentified links: it cannot see into the
	// blocked AS.
	bgpigp, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
	).Diagnose(ctx, meas)
	if err != nil {
		log.Fatal(err)
	}
	// ND-LG maps the stars to ASes via Looking Glasses.
	ndlg, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDLGAlgo),
		netdiag.WithRoutingInfo(routing),
		netdiag.WithLookingGlass(lg),
	).Diagnose(ctx, meas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nground truth: failed link lies in %s (AS%d)\n", topo.AS(blockedAS).Name, blockedAS)
	fmt.Printf("ND-bgpigp suspect ASes: %v  (blames the visible neighbors)\n", bgpigp.ASes())
	fmt.Printf("ND-LG     suspect ASes: %v\n", ndlg.ASes())
	fmt.Printf("ND-LG found the blocked AS: %v\n", containsAS(ndlg.ASes(), blockedAS))
}

// cand pairs a blockable transit AS with one of its probed internal links.
type cand struct {
	as   netdiag.ASN
	link netdiag.LinkID
}

func rngShuffle(rng *rand.Rand, cs []cand) []cand {
	out := append([]cand{}, cs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func prefixes(origins []netdiag.ASN) []netdiag.Prefix {
	out := make([]netdiag.Prefix, len(origins))
	for i, as := range origins {
		out[i] = netdiag.PrefixFor(as)
	}
	return out
}

func containsAS(ases []netdiag.ASN, want netdiag.ASN) bool {
	for _, a := range ases {
		if a == want {
			return true
		}
	}
	return false
}
