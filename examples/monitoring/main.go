// Monitoring: the deployment loop the paper sketches in §6. The sensor
// overlay measures the full mesh every round; a detector suppresses
// transient events (a link flap) and raises an alarm only when an
// unreachability persists, at which point ND-edge diagnoses it from the
// alarm's before/after meshes.
package main

import (
	"context"
	"fmt"
	"log"

	"netdiag"
)

func main() {
	fig := netdiag.BuildFig2()
	net, err := netdiag.NewNetwork(fig.Topo, []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		log.Fatal(err)
	}
	sensors := []netdiag.RouterID{fig.S1, fig.S2, fig.S3}
	detector := netdiag.NewDetector(netdiag.DetectorConfig{Confirm: 3})

	link, _ := fig.Topo.LinkBetween(fig.R["y1"], fig.R["x2"])
	b1b2, _ := fig.Topo.LinkBetween(fig.R["b1"], fig.R["b2"])

	// A scripted timeline: healthy rounds, a one-round flap of the X-Y
	// peering (recovered by the operator before it confirms), then a
	// persistent failure of b1-b2 inside AS-B.
	type step struct {
		label string
		apply func()
	}
	timeline := []step{
		{"healthy", nil},
		{"healthy", nil},
		{"flap: x2-y1 down", func() { net.FailLink(link.ID) }},
		{"flap recovered", func() { net.RestoreLink(link.ID) }},
		{"healthy", nil},
		{"failure: b1-b2 down", func() { net.FailLink(b1b2.ID) }},
		{"still down", nil},
		{"still down", nil},
		{"still down", nil},
	}

	var alarm *netdiag.Alarm
	for round, s := range timeline {
		if s.apply != nil {
			s.apply()
			if err := net.Reconverge(); err != nil {
				log.Fatal(err)
			}
		}
		mesh := net.Mesh(sensors)
		a := detector.Observe(mesh)
		status := "ok"
		if mesh.AnyFailed() {
			status = "unreachable pairs present"
		}
		fmt.Printf("round %d (%-22s): %s\n", round+1, s.label, status)
		if a != nil {
			alarm = a
			fmt.Printf("  >>> ALARM at round %d: pairs %v confirmed unreachable\n",
				a.Round, a.FailedPairs)
			break
		}
	}
	if alarm == nil {
		log.Fatal("timeline ended without a confirmed alarm")
	}

	// The alarm carries exactly what the diagnoser needs.
	meas := netdiag.ToMeasurements(alarm.Baseline, alarm.Current)
	d := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo))
	res, err := d.Diagnose(context.Background(), meas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nND-edge diagnosis of the confirmed failure:")
	for _, h := range res.Hypothesis {
		fmt.Printf("  %s -> %s (ASes %v)\n",
			netdiag.DisplayNode(h.Link.From), netdiag.DisplayNode(h.Link.To), h.ASes)
	}
	fmt.Printf("\nnote: the x2-y1 flap at round 3 never reached the diagnoser — \n" +
		"the detector requires 3 consecutive failed rounds before alarming.\n")
}
