// Quickstart: build the paper's Figure 2 internetwork, break a link inside
// stub AS-B, run full-mesh traceroutes before and after, and let Tomo and
// ND-edge localize the failure from the end-to-end observations alone.
package main

import (
	"context"
	"fmt"
	"log"

	"netdiag"
)

func main() {
	// The Figure 2 topology: stub ASes A, B, C host sensors s1, s2, s3;
	// AS-X (the troubleshooter) and AS-Y provide transit.
	fig := netdiag.BuildFig2()
	net, err := netdiag.NewNetwork(fig.Topo, []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		log.Fatal(err)
	}
	sensors := []netdiag.RouterID{fig.S1, fig.S2, fig.S3}

	// T-: measure the healthy network.
	before := net.Mesh(sensors)
	fmt.Println("healthy paths:")
	fmt.Println("  s1->s2:", before.Paths[0][1])
	fmt.Println("  s1->s3:", before.Paths[0][2])

	// The failure event: the b1-b2 link inside AS-B dies.
	link, _ := fig.Topo.LinkBetween(fig.R["b1"], fig.R["b2"])
	net.FailLink(link.ID)
	if err := net.Reconverge(); err != nil {
		log.Fatal(err)
	}

	// T+: re-measure.
	after := net.Mesh(sensors)
	fmt.Println("\nafter b1-b2 fails:")
	fmt.Println("  s1->s2:", after.Paths[0][1])
	fmt.Println("  s1->s3:", after.Paths[0][2])

	// Diagnose from the measurements.
	meas := netdiag.ToMeasurements(before, after)

	ctx := context.Background()
	tomo, err := netdiag.New(netdiag.WithAlgorithm(netdiag.TomoAlgo)).Diagnose(ctx, meas)
	if err != nil {
		log.Fatal(err)
	}
	edge, err := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo)).Diagnose(ctx, meas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTomo hypothesis (candidate failed links):")
	for _, h := range tomo.Hypothesis {
		fmt.Printf("  %s -> %s\n", netdiag.DisplayNode(h.Link.From), netdiag.DisplayNode(h.Link.To))
	}
	fmt.Println("ND-edge hypothesis:")
	for _, h := range edge.Hypothesis {
		fmt.Printf("  %s -> %s  (ASes %v)\n",
			netdiag.DisplayNode(h.Link.From), netdiag.DisplayNode(h.Link.To), h.ASes)
	}

	// Score against the ground truth.
	b1 := fig.Topo.Router(fig.R["b1"]).Addr
	b2 := fig.Topo.Router(fig.R["b2"]).Addr
	truth := []netdiag.Link{{From: netdiag.Node(b1), To: netdiag.Node(b2)},
		{From: netdiag.Node(b2), To: netdiag.Node(b1)}}
	universe := netdiag.ProbedLinks(fig.Topo, before)
	fmt.Printf("\nND-edge sensitivity %.2f, specificity %.2f over %d probed links\n",
		netdiag.Sensitivity(truth, edge.PhysLinks()),
		netdiag.Specificity(universe, truth, edge.PhysLinks()),
		len(universe))
}
