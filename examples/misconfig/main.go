// Misconfig: reproduce the paper's §3.1 motivating scenario. A BGP export
// filter at router y1 stops announcing AS-C's prefix to AS-X, so the
// physical link x2-y1 keeps working for s1->s2 but silently drops s1->s3.
// Plain Boolean tomography exonerates the link (it carries a working
// path); ND-edge's logical links pin the misconfiguration down.
package main

import (
	"context"
	"fmt"
	"log"

	"netdiag"
)

func main() {
	fig := netdiag.BuildFig2()
	net, err := netdiag.NewNetwork(fig.Topo, []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC})
	if err != nil {
		log.Fatal(err)
	}
	sensors := []netdiag.RouterID{fig.S1, fig.S2, fig.S3}
	before := net.Mesh(sensors)

	// The misconfiguration: y1's outbound filter towards x2 drops the
	// route for AS-C's prefix.
	net.AddExportFilter(netdiag.ExportFilter{
		Router: fig.R["y1"],
		Peer:   fig.R["x2"],
		Prefix: netdiag.PrefixFor(fig.ASC),
	})
	if err := net.Reconverge(); err != nil {
		log.Fatal(err)
	}
	after := net.Mesh(sensors)

	fmt.Println("after the misconfiguration at y1:")
	fmt.Println("  s1->s2 (via x2-y1):", okString(after.Paths[0][1].OK))
	fmt.Println("  s1->s3 (via x2-y1):", okString(after.Paths[0][2].OK))
	fmt.Println("  -> the x2-y1 link failed *partially*: same link, different fate per destination")

	meas := netdiag.ToMeasurements(before, after)

	ctx := context.Background()
	tomo, err := netdiag.New(netdiag.WithAlgorithm(netdiag.TomoAlgo)).Diagnose(ctx, meas)
	if err != nil {
		log.Fatal(err)
	}
	edge, err := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo)).Diagnose(ctx, meas)
	if err != nil {
		log.Fatal(err)
	}

	x2y1 := netdiag.Link{
		From: netdiag.Node(fig.Topo.Router(fig.R["x2"]).Addr),
		To:   netdiag.Node(fig.Topo.Router(fig.R["y1"]).Addr),
	}

	fmt.Println("\nTomo hypothesis (cannot see partial failures):")
	for _, h := range tomo.Hypothesis {
		fmt.Printf("  %s -> %s\n", netdiag.DisplayNode(h.Link.From), netdiag.DisplayNode(h.Link.To))
	}
	fmt.Println("contains the misconfigured link x2->y1?",
		containsPhys(tomo.PhysLinks(), x2y1))

	fmt.Println("\nND-edge hypothesis (logical links, paper Fig 3):")
	for _, h := range edge.Hypothesis {
		fmt.Printf("  %s -> %s  [physical %s -> %s]\n",
			netdiag.DisplayNode(h.Link.From), netdiag.DisplayNode(h.Link.To),
			netdiag.DisplayNode(h.Phys.From), netdiag.DisplayNode(h.Phys.To))
	}
	fmt.Println("contains the misconfigured link x2->y1?",
		containsPhys(edge.PhysLinks(), x2y1))
}

func okString(ok bool) string {
	if ok {
		return "works"
	}
	return "FAILS"
}

func containsPhys(links []netdiag.Link, want netdiag.Link) bool {
	for _, l := range links {
		if l == want {
			return true
		}
	}
	return false
}
