package netdiag_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"netdiag"
)

// fig2Measurements simulates the Fig 2 scenario with the b1-b2 failure and
// returns the diagnosis input plus the routing observations.
func fig2Measurements(t *testing.T) (*netdiag.Measurements, *netdiag.RoutingInfo) {
	t.Helper()
	fig := netdiag.BuildFig2()
	origins := []netdiag.ASN{fig.ASA, fig.ASB, fig.ASC}
	net, err := netdiag.NewNetwork(fig.Topo, origins, netdiag.WithNetworkParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	sensors := []netdiag.RouterID{fig.S1, fig.S2, fig.S3}
	before := net.Mesh(sensors)
	beforeBGP := net.BGP()

	link, ok := fig.Topo.LinkBetween(fig.R["b1"], fig.R["b2"])
	if !ok {
		t.Fatal("b1-b2 missing")
	}
	net.FailLink(link.ID)
	if err := net.Reconverge(); err != nil {
		t.Fatal(err)
	}
	after := net.Mesh(sensors)
	routing := &netdiag.RoutingInfo{
		ASX:          fig.ASX,
		IGPDownLinks: netdiag.AdaptIGPDowns(net, fig.ASX),
		Withdrawals: netdiag.AdaptWithdrawals(fig.Topo,
			netdiag.ObserveWithdrawals(fig.Topo, beforeBGP, net.BGP(), fig.ASX), origins),
	}
	return netdiag.ToMeasurements(before, after), routing
}

// TestDiagnoserMatchesWrappers asserts the session API and the legacy
// wrappers produce identical hypothesis sets.
func TestDiagnoserMatchesWrappers(t *testing.T) {
	meas, routing := fig2Measurements(t)
	ctx := context.Background()

	wantEdge, err := netdiag.NDEdge(meas)
	if err != nil {
		t.Fatal(err)
	}
	gotEdge, err := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo)).Diagnose(ctx, meas)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantEdge, gotEdge) {
		t.Fatalf("ND-edge session result differs:\n%v\nvs\n%v", gotEdge, wantEdge)
	}

	wantBI, err := netdiag.NDBgpIgp(meas, routing)
	if err != nil {
		t.Fatal(err)
	}
	gotBI, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
	).Diagnose(ctx, meas)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBI, gotBI) {
		t.Fatalf("ND-bgpigp session result differs:\n%v\nvs\n%v", gotBI, wantBI)
	}

	if a := netdiag.New(netdiag.WithAlgorithm(netdiag.NDLGAlgo)).Algorithm(); a.String() != "ND-LG" {
		t.Fatalf("Algorithm() = %v", a)
	}
}

// TestDiagnoseParallelismIdentical asserts the hypothesis set is identical
// between sequential diagnosis and an 8-worker run.
func TestDiagnoseParallelismIdentical(t *testing.T) {
	meas, routing := fig2Measurements(t)
	seq, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
		netdiag.WithParallelism(1),
	).Diagnose(context.Background(), meas)
	if err != nil {
		t.Fatal(err)
	}
	par, err := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
		netdiag.WithParallelism(8),
	).Diagnose(context.Background(), meas)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallelism changed the result:\nseq %v\npar %v", seq, par)
	}
}

// TestDiagnoseValidation asserts malformed measurements surface as a typed
// *ValidationError through errors.As, for both the session API and the
// legacy wrappers.
func TestDiagnoseValidation(t *testing.T) {
	bad := &netdiag.Measurements{
		NumSensors: 2,
		Before: []*netdiag.TracePath{
			{SrcSensor: 0, DstSensor: 5, OK: true, Hops: []netdiag.Hop{{Node: "a"}, {Node: "b"}}},
		},
	}
	_, err := netdiag.New().Diagnose(context.Background(), bad)
	var verr *netdiag.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("Diagnose error = %v, want *ValidationError", err)
	}
	if verr.Mesh != "before" || verr.Src != 0 || verr.Dst != 5 {
		t.Fatalf("ValidationError fields = %+v", verr)
	}
	if _, err := netdiag.Tomo(bad); !errors.As(err, &verr) {
		t.Fatalf("Tomo error = %v, want *ValidationError", err)
	}
	if _, err := netdiag.Run(bad, netdiag.Options{}); !errors.As(err, &verr) {
		t.Fatalf("Run error = %v, want *ValidationError", err)
	}
}

// TestDiagnoseCancellation asserts an already-cancelled context aborts the
// diagnosis with ctx.Err().
func TestDiagnoseCancellation(t *testing.T) {
	meas, _ := fig2Measurements(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := netdiag.New(netdiag.WithAlgorithm(netdiag.NDEdgeAlgo)).Diagnose(ctx, meas)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Diagnose with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestDiagnoserConcurrentUse hammers a single Diagnoser from many
// goroutines. The session is immutable after New, so this must be
// race-free (run with -race) and every call must return the same result.
func TestDiagnoserConcurrentUse(t *testing.T) {
	meas, routing := fig2Measurements(t)
	d := netdiag.New(
		netdiag.WithAlgorithm(netdiag.NDBgpIgpAlgo),
		netdiag.WithRoutingInfo(routing),
		netdiag.WithParallelism(4),
	)
	want, err := d.Diagnose(context.Background(), meas)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([]*netdiag.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = d.Diagnose(context.Background(), meas)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], want) {
			t.Fatalf("goroutine %d result differs:\n%v\nvs\n%v", g, results[g], want)
		}
	}
}

// TestValidationErrorMessage pins the error rendering used by the CLI.
func TestValidationErrorMessage(t *testing.T) {
	verr := &netdiag.ValidationError{Mesh: "after", Src: 1, Dst: 2, Reason: "no hops"}
	want := "core: after path 1->2 invalid: no hops"
	if got := fmt.Sprint(verr); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}
